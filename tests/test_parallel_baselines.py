"""Tests for bridge parallelism, AutoCCZ, reaction model and baselines."""

from itertools import product

import pytest

from repro.baselines.beverland import beverland_atom_estimate
from repro.baselines.gidney_ekera import (
    GidneyEkeraModel,
    ge_rescaled_to_atoms,
    ge_superconducting_headline,
)
from repro.baselines.qldpc import QLDPCStorageModel
from repro.core.volume import ResourceEstimate
from repro.parallel.autoccz import AutoCCZTiming, verify_autoccz_branch
from repro.parallel.bridge import BridgedExecution, parallel_copies
from repro.parallel.reaction import ReactionModel


class TestBridge:
    def test_copies_floor(self):
        assert parallel_copies(10e-3, 1e-3) == 10
        assert parallel_copies(0.5e-3, 1e-3) == 1

    def test_bounded_by_work(self):
        run = BridgedExecution(3, 10e-3, 1e-3, qubits_per_block=5)
        assert run.copies == 3

    def test_speedup_at_most_copies(self):
        run = BridgedExecution(100, 10e-3, 1e-3, qubits_per_block=5)
        assert 1.0 < run.speedup <= run.copies

    def test_serial_case_no_overhead(self):
        run = BridgedExecution(10, 0.5e-3, 1e-3, qubits_per_block=5)
        assert run.copies == 1
        assert run.makespan == pytest.approx(10 * 0.5e-3)

    def test_peak_qubits_includes_bridges(self):
        run = BridgedExecution(100, 10e-3, 1e-3, qubits_per_block=5)
        assert run.peak_qubits == pytest.approx(10 * 5 + 2 * 9)

    def test_active_fraction_reclaims_idle(self):
        full = BridgedExecution(100, 10e-3, 1e-3, 5, active_fraction=1.0)
        lean = BridgedExecution(100, 10e-3, 1e-3, 5, active_fraction=0.5)
        assert lean.peak_qubits < full.peak_qubits


class TestAutoCCZ:
    @pytest.mark.parametrize("branch", list(product((0, 1), repeat=3)))
    def test_gadget_equals_ccz_on_every_branch(self, branch):
        assert verify_autoccz_branch(branch, trials=2)

    def test_timing(self):
        assert AutoCCZTiming(1e-3).steps_time(278) == pytest.approx(0.278)


class TestReactionModel:
    def test_paper_default_1ms(self):
        assert ReactionModel().reaction_time == pytest.approx(1e-3)

    def test_decoder_speedup(self):
        fast = ReactionModel().with_decoder_speedup(5)
        assert fast.reaction_time == pytest.approx(500e-6 + 100e-6)

    def test_fast_readout(self):
        cavity = ReactionModel().with_readout(6e-6)
        assert cavity.reaction_time == pytest.approx(506e-6)

    def test_rate(self):
        assert ReactionModel().reaction_limited_rate() == pytest.approx(1000.0)


class TestGidneyEkeraBaseline:
    def test_headline_calibration(self):
        est = ge_superconducting_headline()
        assert est.megaqubits == pytest.approx(20.0, rel=0.1)
        assert 4 < est.runtime_seconds / 3600 < 16  # same order as 8 h

    def test_atom_rescale_is_hundreds_of_days(self):
        est = ge_rescaled_to_atoms()
        assert 100 < est.runtime_days < 1500

    def test_surgery_limited_below_reaction(self):
        model = GidneyEkeraModel(cycle_time=900e-6, reaction_time=1e-3)
        assert model.toffoli_step_time == pytest.approx(27 * 900e-6)

    def test_reaction_limited_when_slow(self):
        model = GidneyEkeraModel(cycle_time=1e-6, reaction_time=1e-3)
        assert model.toffoli_step_time == pytest.approx(1e-3)

    def test_lookup_addition_count(self):
        model = GidneyEkeraModel()
        assert model.num_lookup_additions == pytest.approx(5.04e5, rel=0.01)


class TestBeverlandBaseline:
    def test_multi_year_runtime(self):
        est = beverland_atom_estimate()
        assert est.runtime_days > 365

    def test_qubit_scale(self):
        assert 5 < beverland_atom_estimate().megaqubits < 40


class TestQLDPC:
    def test_paper_20_percent_saving(self):
        base = ResourceEstimate(physical_qubits=19e6, runtime_seconds=1.0)
        model = QLDPCStorageModel(compression=10.0)
        reduction = model.footprint_reduction(base, idle_qubits=4.5e6)
        assert reduction == pytest.approx(0.21, abs=0.03)

    def test_runtime_unchanged(self):
        base = ResourceEstimate(physical_qubits=10e6, runtime_seconds=7.0)
        out = QLDPCStorageModel().apply(base, 2e6)
        assert out.runtime_seconds == 7.0
        assert out.physical_qubits < base.physical_qubits

    def test_idle_bounds_checked(self):
        base = ResourceEstimate(physical_qubits=1e6, runtime_seconds=1.0)
        with pytest.raises(ValueError):
            QLDPCStorageModel().apply(base, 2e6)

    def test_compression_below_one_rejected(self):
        with pytest.raises(ValueError):
            QLDPCStorageModel(compression=0.5)
