"""Tests for repro.core.params (paper Table I constants)."""

import dataclasses

import pytest

from repro.core.params import (
    DEFAULT_CONFIG,
    ArchitectureConfig,
    ErrorParams,
    PhysicalParams,
)


class TestPhysicalParams:
    def test_table_i_defaults(self):
        p = PhysicalParams()
        assert p.site_spacing == pytest.approx(12e-6)
        assert p.acceleration == pytest.approx(5500.0)
        assert p.gate_time == pytest.approx(1e-6)
        assert p.measure_time == pytest.approx(500e-6)
        assert p.decode_time == pytest.approx(500e-6)

    def test_reaction_time_is_measure_plus_decode(self):
        p = PhysicalParams()
        assert p.reaction_time == pytest.approx(1e-3)

    def test_rescaled_changes_one_field(self):
        p = PhysicalParams().rescaled(acceleration=11000.0)
        assert p.acceleration == 11000.0
        assert p.site_spacing == pytest.approx(12e-6)

    def test_rescaled_returns_new_object(self):
        p = PhysicalParams()
        q = p.rescaled(measure_time=1e-4)
        assert p.measure_time == pytest.approx(500e-6)
        assert q.measure_time == pytest.approx(1e-4)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PhysicalParams().gate_time = 2e-6


class TestErrorParams:
    def test_lambda_is_threshold_over_physical(self):
        e = ErrorParams(p_phys=1e-3, p_thres=1e-2)
        assert e.lam == pytest.approx(10.0)

    def test_default_alpha_is_one_sixth(self):
        assert ErrorParams().alpha == pytest.approx(1.0 / 6.0)

    def test_default_prefactor(self):
        assert ErrorParams().prefactor_c == pytest.approx(0.1)

    def test_rescaled_alpha(self):
        e = ErrorParams().rescaled(alpha=0.5)
        assert e.alpha == 0.5
        assert e.p_phys == pytest.approx(1e-3)

    def test_lambda_scales_with_physical_rate(self):
        better = ErrorParams(p_phys=5e-4)
        assert better.lam == pytest.approx(20.0)


class TestArchitectureConfig:
    def test_defaults(self):
        c = ArchitectureConfig()
        assert c.se_rounds_per_gate == 1.0
        assert c.storage_se_period == pytest.approx(8e-3)

    def test_default_config_singleton_usable(self):
        assert DEFAULT_CONFIG.physical.reaction_time == pytest.approx(1e-3)

    def test_rescaled_nested(self):
        c = ArchitectureConfig().rescaled(storage_se_period=4e-3)
        assert c.storage_se_period == pytest.approx(4e-3)
        assert c.physical.acceleration == pytest.approx(5500.0)
