"""Tests for the decode-phase overhaul.

Covers the four layers the overhaul added to the decode path:

* the batched union-find growth arena is bit-identical to the per-shot
  reference loop it replaced (``batched=False``), row for row;
* the sparse <=2-defect fast path (closed-form table lookups shared by
  MWPM and union-find through ``BatchDecoder._decode_unique_rows``) is
  certified against the full decoders on exhaustive enumerations;
* the cross-batch syndrome cache serves bit-identical rows, keys on the
  decoder/graph content fingerprint, respects ``clear_caches()`` /
  ``caching_disabled()`` / ``REPRO_SYNDROME_CACHE=0``, and leaves
  ``EngineResult`` float-exactly invariant across worker counts and
  cache settings;
* the shared-memory ``collect`` transport is bit-identical to the pickle
  baseline, keeps its tables valid after the engine closes, and leaks no
  ``/dev/shm`` segments.

The vectorized ``_unmask_rows`` observable expansion is regression-tested
against the per-bit loop it replaced.
"""

import gc
import itertools
import os

import numpy as np
import pytest

from repro.core.cache import cache_stats, caching_disabled, clear_caches
from repro.decoder.base import _unmask_rows
from repro.decoder.cache import SyndromeCache, cache_enabled, syndrome_cache
from repro.decoder.engine import DecodingEngine
from repro.decoder.graph import DecodingGraph
from repro.decoder.mwpm import MWPMDecoder
from repro.decoder.union_find import UnionFindDecoder
from repro.sim.frame import FrameSimulator
from repro.sim.memory import memory_circuit


@pytest.fixture(scope="module")
def d3_setup():
    """d=3 memory circuit, its graph, and a sampled syndrome batch."""
    circuit = memory_circuit(3, 3, 0.004)
    sim = FrameSimulator(circuit, rng=np.random.default_rng(19))
    graph = DecodingGraph.from_dem(sim.detector_error_model())
    detectors, observables = sim.sample(400)
    return circuit, graph, detectors.astype(np.uint8), observables


def _unique_rows(detectors):
    return np.unique(detectors, axis=0)


def _sparse_rows(num_detectors, max_defects=2):
    """Every syndrome with 0, 1, or 2 defects, as a dense uint8 batch."""
    rows = [np.zeros(num_detectors, dtype=np.uint8)]
    for i in range(num_detectors):
        row = np.zeros(num_detectors, dtype=np.uint8)
        row[i] = 1
        rows.append(row)
    if max_defects >= 2:
        for i, j in itertools.combinations(range(num_detectors), 2):
            row = np.zeros(num_detectors, dtype=np.uint8)
            row[i] = row[j] = 1
            rows.append(row)
    return np.stack(rows)


class TestBatchedUnionFind:
    @pytest.mark.parametrize("distance", [3, 5])
    def test_arena_bit_identical_to_reference(self, distance):
        circuit = memory_circuit(distance, distance, 0.003)
        sim = FrameSimulator(circuit, rng=np.random.default_rng(23))
        graph = DecodingGraph.from_dem(sim.detector_error_model())
        detectors, _ = sim.sample(600)
        unique = _unique_rows(detectors.astype(np.uint8))
        batched = UnionFindDecoder(graph)
        arena = batched._decode_unique(unique)
        reference = np.stack(
            [batched._decode_reference(row) for row in unique]
        )
        assert np.array_equal(arena, reference)

    def test_batched_flag_selects_reference_loop(self, d3_setup):
        _, graph, detectors, _ = d3_setup
        unique = _unique_rows(detectors)
        per_shot = UnionFindDecoder(graph, batched=False)
        batched = UnionFindDecoder(graph)
        assert np.array_equal(
            per_shot._decode_unique(unique), batched._decode_unique(unique)
        )

    def test_scalar_decode_matches_reference(self, d3_setup):
        _, graph, detectors, _ = d3_setup
        batched = UnionFindDecoder(graph)
        row = next(r for r in detectors if r.any())
        assert np.array_equal(
            batched.decode(row), batched._decode_reference(row)
        )


class TestUnmaskRows:
    @pytest.mark.parametrize("num_obs", [1, 7, 62])
    def test_matches_per_bit_loop(self, num_obs):
        rng = np.random.default_rng(31)
        masks = rng.integers(
            0, 1 << num_obs, size=64, dtype=np.int64
        )
        expected = np.zeros((masks.size, num_obs), dtype=np.uint8)
        for i, mask in enumerate(masks):
            for bit in range(num_obs):
                expected[i, bit] = (int(mask) >> bit) & 1
        assert np.array_equal(_unmask_rows(masks, num_obs), expected)

    def test_zero_observables(self):
        out = _unmask_rows(np.zeros(5, dtype=np.int64), 0)
        assert out.shape == (5, 0)


class TestSparseFastPath:
    """The <=2-defect closed forms must equal the full decoders exactly."""

    def test_mwpm_exhaustive_two_defect_certification(self, d3_setup):
        _, graph, _, _ = d3_setup
        decoder = MWPMDecoder(graph)
        rows = _sparse_rows(graph.num_detectors)
        assert decoder._sparse_tables() is not None
        fast = decoder._decode_unique_rows(rows)
        full = decoder._decode_unique(rows)
        assert np.array_equal(fast, full)

    def test_union_find_exhaustive_certification(self, d3_setup):
        _, graph, _, _ = d3_setup
        decoder = UnionFindDecoder(graph)
        rows = _sparse_rows(graph.num_detectors)
        assert decoder._sparse_tables() is not None
        fast = decoder._decode_unique_rows(rows)
        full = decoder._decode_unique(rows)
        assert np.array_equal(fast, full)

    def test_blossom_matcher_opts_out(self, d3_setup):
        _, graph, _, _ = d3_setup
        assert MWPMDecoder(graph, matcher="blossom")._sparse_tables() is None

    def test_per_shot_union_find_opts_out(self, d3_setup):
        _, graph, _, _ = d3_setup
        assert UnionFindDecoder(graph, batched=False)._sparse_tables() is None


class TestSyndromeCacheUnit:
    def test_lru_eviction_order(self):
        cache = SyndromeCache(capacity=2)
        cache.put("t", b"a", b"1")
        cache.put("t", b"b", b"2")
        assert cache.get("t", b"a") == b"1"  # refreshes 'a'
        cache.put("t", b"c", b"3")  # evicts 'b', the LRU entry
        assert cache.get("t", b"b") is None
        assert cache.get("t", b"a") == b"1"
        assert cache.get("t", b"c") == b"3"
        info = cache.cache_info()
        assert (info.maxsize, info.currsize) == (2, 2)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            SyndromeCache(capacity=0)


class TestSyndromeCacheIntegration:
    def _packed_unique(self, detectors):
        return np.packbits(_unique_rows(detectors), axis=1)

    def test_repeat_decode_hits_bit_identical(self, d3_setup):
        _, graph, detectors, _ = d3_setup
        clear_caches()
        decoder = MWPMDecoder(graph)
        packed = self._packed_unique(detectors)
        num_det = graph.num_detectors
        before = syndrome_cache().cache_info()
        first = decoder.decode_packed(packed, num_det)
        mid = syndrome_cache().cache_info()
        assert mid.misses - before.misses == packed.shape[0]
        second = decoder.decode_packed(packed, num_det)
        after = syndrome_cache().cache_info()
        assert after.hits - mid.hits == packed.shape[0]
        assert np.array_equal(first, second)
        with caching_disabled():
            uncached = decoder.decode_packed(packed, num_det)
        assert np.array_equal(first, uncached)

    def test_registered_and_emptied_by_clear_caches(self, d3_setup):
        _, graph, detectors, _ = d3_setup
        decoder = MWPMDecoder(graph)
        packed = self._packed_unique(detectors)
        decoder.decode_packed(packed, graph.num_detectors)
        assert "repro.decoder.syndrome" in cache_stats()
        assert syndrome_cache().cache_info().currsize > 0
        clear_caches()
        assert syndrome_cache().cache_info().currsize == 0
        # Still correct (repopulates) after the flush.
        again = decoder.decode_packed(packed, graph.num_detectors)
        with caching_disabled():
            assert np.array_equal(
                again, decoder.decode_packed(packed, graph.num_detectors)
            )

    def test_token_fingerprints_graph_and_config(self, d3_setup):
        _, graph, _, _ = d3_setup
        # A different edge probability is a different decoding graph, so
        # the digest -- and with it every cache key -- must change.
        other = DecodingGraph(graph.num_detectors, graph.num_observables)
        for i, edge in enumerate(graph.edges):
            p = edge.probability * (1.5 if i == 0 else 1.0)
            other.add_mechanism(edge.detectors, p, edge.observables)
        assert graph.digest() != other.digest()
        assert (
            MWPMDecoder(graph)._cache_token()
            != MWPMDecoder(other)._cache_token()
        )
        # Decoder configuration is part of the fingerprint too.
        assert (
            MWPMDecoder(graph)._cache_token()
            != MWPMDecoder(graph, decompose=False)._cache_token()
        )
        assert (
            UnionFindDecoder(graph)._cache_token()
            != UnionFindDecoder(graph, batched=False)._cache_token()
        )
        assert (
            MWPMDecoder(graph)._cache_token()
            != UnionFindDecoder(graph)._cache_token()
        )

    def test_cross_decoder_isolation(self, d3_setup):
        """Cached MWPM rows must never be served to union-find."""
        _, graph, detectors, _ = d3_setup
        clear_caches()
        packed = self._packed_unique(detectors)
        num_det = graph.num_detectors
        MWPMDecoder(graph).decode_packed(packed, num_det)
        before = syndrome_cache().cache_info()
        uf = UnionFindDecoder(graph)
        cached = uf.decode_packed(packed, num_det)
        after = syndrome_cache().cache_info()
        assert after.misses - before.misses == packed.shape[0]
        assert after.hits == before.hits
        with caching_disabled():
            assert np.array_equal(cached, uf.decode_packed(packed, num_det))

    def test_env_switch_disables_cache(self, d3_setup, monkeypatch):
        _, graph, detectors, _ = d3_setup
        monkeypatch.setenv("REPRO_SYNDROME_CACHE", "0")
        assert not cache_enabled()
        decoder = MWPMDecoder(graph)
        packed = self._packed_unique(detectors)
        before = syndrome_cache().cache_info()
        out = decoder.decode_packed(packed, graph.num_detectors)
        after = syndrome_cache().cache_info()
        assert (after.hits, after.misses) == (before.hits, before.misses)
        monkeypatch.delenv("REPRO_SYNDROME_CACHE")
        assert np.array_equal(
            out, decoder.decode_packed(packed, graph.num_detectors)
        )

    def test_engine_results_invariant_under_workers_and_cache(
        self, d3_setup, monkeypatch
    ):
        """jobs=1 vs jobs=4, cache on vs off: float-exact EngineResults."""
        circuit, _, _, _ = d3_setup
        results = {}
        for cache_env, workers in itertools.product(("1", "0"), (1, 4)):
            monkeypatch.setenv("REPRO_SYNDROME_CACHE", cache_env)
            clear_caches()
            with DecodingEngine(
                circuit, "mwpm", shard_shots=256, workers=workers
            ) as engine:
                results[(cache_env, workers)] = engine.run(2000, seed=5)
        reference = results[("1", 1)]
        for key, result in results.items():
            assert result == reference, (key, result, reference)


class TestSharedMemoryTransport:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_shm_bit_identical_to_pickle(self, d3_setup, workers):
        circuit, _, _, _ = d3_setup
        with DecodingEngine(
            circuit, "mwpm", shard_shots=128, workers=workers,
            transport="pickle",
        ) as engine:
            det_ref, obs_ref = engine.collect(1000, seed=17)
        with DecodingEngine(
            circuit, "mwpm", shard_shots=128, workers=workers,
            transport="shm",
        ) as engine:
            det_shm, obs_shm = engine.collect(1000, seed=17)
        assert np.array_equal(det_ref, det_shm)
        assert np.array_equal(obs_ref, obs_shm)

    def test_tables_survive_engine_close(self, d3_setup):
        circuit, _, _, _ = d3_setup
        engine = DecodingEngine(circuit, "mwpm", shard_shots=128, workers=2)
        detectors, observables = engine.collect(500, seed=17)
        engine.close()
        del engine
        gc.collect()
        assert detectors.shape[0] == 500
        assert int(detectors.sum()) >= 0 and int(observables.sum()) >= 0
        # A derived view keeps the segment alive through the base chain.
        tail = detectors[400:]
        del detectors
        gc.collect()
        assert tail.shape[0] == 100
        assert int(tail.sum()) >= 0

    def test_no_dev_shm_leak(self, d3_setup):
        circuit, _, _, _ = d3_setup
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        gc.collect()
        before = set(os.listdir("/dev/shm"))
        with DecodingEngine(circuit, "mwpm", shard_shots=128) as engine:
            detectors, observables = engine.collect(400, seed=17)
            del detectors, observables
        gc.collect()
        leaked = set(os.listdir("/dev/shm")) - before
        assert not leaked

    def test_invalid_transport_rejected(self, d3_setup):
        circuit, _, _, _ = d3_setup
        with pytest.raises(ValueError, match="transport"):
            DecodingEngine(circuit, "mwpm", transport="carrier-pigeon")

    def test_zero_shots(self, d3_setup):
        circuit, _, _, _ = d3_setup
        with DecodingEngine(circuit, "mwpm") as engine:
            detectors, observables = engine.collect(0, seed=17)
        assert detectors.shape[0] == 0 and observables.shape[0] == 0
