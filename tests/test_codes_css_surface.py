"""Tests for CSS codes, the rotated surface code and the [[8,3,2]] code."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.color_832 import Color832Code
from repro.codes.css import CSSCode, gf2_nullspace, gf2_rank, gf2_rowspace_contains
from repro.codes.pauli import mutually_commuting
from repro.codes.surface_code import RotatedSurfaceCode


class TestGF2:
    def test_rank_identity(self):
        assert gf2_rank(np.eye(4, dtype=np.uint8)) == 4

    def test_rank_dependent_rows(self):
        m = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]], dtype=np.uint8)
        assert gf2_rank(m) == 2  # third row = sum of first two

    def test_rowspace_contains(self):
        m = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
        assert gf2_rowspace_contains(m, np.array([1, 0, 1]))
        assert not gf2_rowspace_contains(m, np.array([1, 0, 0]))

    def test_nullspace_orthogonal(self):
        m = np.array([[1, 1, 0, 0], [0, 0, 1, 1]], dtype=np.uint8)
        basis = gf2_nullspace(m)
        assert basis.shape[0] == 2
        assert not np.any((m @ basis.T) % 2)

    @given(st.integers(2, 6), st.integers(2, 6), st.integers(0, 2**30))
    @settings(max_examples=30)
    def test_rank_nullity(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(0, 2, size=(rows, cols)).astype(np.uint8)
        assert gf2_rank(m) + gf2_nullspace(m).shape[0] == cols


class TestCSSCode:
    def steane(self) -> CSSCode:
        h = np.array(
            [[1, 1, 1, 1, 0, 0, 0], [1, 1, 0, 0, 1, 1, 0], [1, 0, 1, 0, 1, 0, 1]],
            dtype=np.uint8,
        )
        return CSSCode(h, h, name="steane")

    def test_steane_parameters(self):
        code = self.steane()
        assert code.num_qubits == 7
        assert code.num_logical == 1

    def test_steane_logical_weight_3(self):
        code = self.steane()
        assert code.logical_x(0).weight == 3
        assert code.logical_z(0).weight == 3

    def test_steane_validates(self):
        self.steane().validate()

    def test_css_condition_enforced(self):
        hx = np.array([[1, 1, 0]], dtype=np.uint8)
        hz = np.array([[1, 0, 0]], dtype=np.uint8)
        with pytest.raises(ValueError):
            CSSCode(hx, hz)

    def test_stabilizers_commute_as_paulis(self):
        code = self.steane()
        assert mutually_commuting(code.x_stabilizers() + code.z_stabilizers())

    def test_logical_anticommutes_with_partner(self):
        code = self.steane()
        assert not code.logical_x(0).commutes_with(code.logical_z(0))

    def test_is_logical_predicates(self):
        code = self.steane()
        xv = np.zeros(7, dtype=np.uint8)
        for q in code.logical_x(0).support:
            xv[q] = 1
        assert code.is_x_logical(xv)
        assert not code.is_x_logical(code.hx[0])  # a stabilizer is not logical


class TestRotatedSurfaceCode:
    @pytest.mark.parametrize("d", [3, 5, 7])
    def test_counts(self, d):
        code = RotatedSurfaceCode(d)
        assert code.num_data == d * d
        assert code.num_ancilla == d * d - 1
        assert code.num_physical == 2 * d * d - 1
        assert len(code.x_plaquettes) == (d * d - 1) // 2
        assert len(code.z_plaquettes) == (d * d - 1) // 2

    @pytest.mark.parametrize("d", [3, 5, 7])
    def test_validates(self, d):
        RotatedSurfaceCode(d).validate()

    def test_encodes_one_logical(self):
        assert RotatedSurfaceCode(5).css.num_logical == 1

    @pytest.mark.parametrize("d", [3, 5])
    def test_logical_supports_are_weight_d(self, d):
        code = RotatedSurfaceCode(d)
        assert len(code.logical_x_support()) == d
        assert len(code.logical_z_support()) == d

    def test_logical_column_is_x_logical(self):
        code = RotatedSurfaceCode(5)
        v = np.zeros(code.num_data, dtype=np.uint8)
        for q in code.logical_x_support(2):
            v[q] = 1
        assert code.css.is_x_logical(v)

    def test_logical_row_is_z_logical(self):
        code = RotatedSurfaceCode(5)
        v = np.zeros(code.num_data, dtype=np.uint8)
        for q in code.logical_z_support(3):
            v[q] = 1
        assert code.css.is_z_logical(v)

    def test_plaquette_weights(self):
        code = RotatedSurfaceCode(5)
        for plaq in code.x_plaquettes + code.z_plaquettes:
            assert plaq.weight in (2, 4)

    def test_boundary_check_counts(self):
        # d-1 weight-2 checks split between the two bases.
        code = RotatedSurfaceCode(5)
        w2_x = sum(1 for p in code.x_plaquettes if p.weight == 2)
        w2_z = sum(1 for p in code.z_plaquettes if p.weight == 2)
        assert w2_x == 4
        assert w2_z == 4

    def test_even_distance_rejected(self):
        with pytest.raises(ValueError):
            RotatedSurfaceCode(4)

    def test_matching_incidence(self):
        code = RotatedSurfaceCode(5)
        for basis in ("X", "Z"):
            incidence = code.checks_on_data(basis)
            bulk = sum(1 for entry in incidence if len(entry) == 2)
            boundary = sum(1 for entry in incidence if len(entry) == 1)
            assert bulk + boundary == code.num_data
            # Two opposing boundary columns/rows of d qubits each.
            assert boundary == 2 * code.distance


class TestColor832:
    def test_parameters(self):
        code = Color832Code()
        assert code.css.num_qubits == 8
        assert code.css.num_logical == 3

    def test_validates(self):
        Color832Code().css.validate()

    def test_logical_supports(self):
        code = Color832Code()
        for i in range(3):
            assert len(code.logical_x_support(i)) == 4  # faces
            assert len(code.logical_z_support(i)) == 2  # edges

    def test_logical_pairing(self):
        code = Color832Code()
        for i in range(3):
            face = set(code.logical_x_support(i))
            for j in range(3):
                edge = set(code.logical_z_support(j))
                overlap = len(face & edge)
                assert overlap % 2 == (1 if i == j else 0) % 2

    def test_t_pattern_balanced(self):
        # 4 T and 4 T-dagger, matching the 8T factory input pattern.
        pattern = Color832Code().t_pattern()
        assert sum(1 for s in pattern if s == 1) == 4
        assert sum(1 for s in pattern if s == -1) == 4

    def test_transversal_t_implements_ccz(self):
        # The headline property behind the 8T-to-CCZ factory.
        assert Color832Code().ccz_phase_check()

    def test_single_z_errors_detected(self):
        code = Color832Code()
        for v in range(8):
            assert code.z_error_detected(1 << v)

    def test_weight_two_errors_undetected_and_logical(self):
        # All 28 weight-2 Z patterns evade detection; each corrupts the
        # logical state (this is the 28 p^2 coefficient of Eq. 8).
        code = Color832Code()
        harmful = 0
        for a in range(8):
            for b in range(a + 1, 8):
                mask = (1 << a) | (1 << b)
                assert not code.z_error_detected(mask)
                if code.z_error_is_logical(mask):
                    harmful += 1
        assert harmful == 28

    def test_some_weight_four_errors_are_stabilizers(self):
        code = Color832Code()
        face_mask = 0
        for v in code.logical_x_support(0):
            pass
        # A Z face (e.g. bit0 = 0) is a stabilizer: harmless and undetected.
        mask = sum(1 << v for v in range(8) if (v & 1) == 0)
        assert not code.z_error_detected(mask)
        assert not code.z_error_is_logical(mask)

    def test_codeword_supports_are_complementary(self):
        code = Color832Code()
        for bits in [(0, 0, 0), (1, 0, 1), (1, 1, 1)]:
            lo, hi = code.codeword_support(bits)
            assert lo ^ hi == 0xFF
