"""Tests for the magic-state factory stack."""

import math

import pytest

from repro.codes.color_832 import Color832Code
from repro.core.params import PhysicalParams
from repro.factory.cultivation import CultivationModel, required_t_error
from repro.factory.layout import FactoryLayout
from repro.factory.layout_synth import evaluate, synthesize_1d_layout
from repro.factory.pipeline import size_fleet
from repro.factory.t_to_ccz import (
    DistillationCurve,
    distilled_ccz_error,
    factory_circuit,
    factory_cnot_layers,
    output_fidelity,
    run_factory,
)


class TestCultivation:
    def test_paper_anchor(self):
        model = CultivationModel(7.7e-7, 27)
        assert model.expected_volume_qubit_rounds == pytest.approx(1.5e4, rel=0.01)

    def test_harder_targets_cost_more(self):
        cheap = CultivationModel(1e-5, 27)
        costly = CultivationModel(1e-8, 27)
        assert costly.expected_volume_qubit_rounds > cheap.expected_volume_qubit_rounds

    def test_required_t_error_paper_example(self):
        # 5% budget over 3e9 CCZs -> 1.6e-11 per CCZ -> ~7.6e-7 per T.
        per_t = required_t_error(1.6e-11)
        assert per_t == pytest.approx(7.6e-7, rel=0.02)

    def test_copies_fit_in_row(self):
        assert 4 <= CultivationModel(7.7e-7, 27).copies_in_row() <= 12

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            CultivationModel(0.0, 27)


class TestTToCCZ:
    def test_clean_run_yields_ccz(self):
        sim, accepted = run_factory()
        assert accepted
        assert output_fidelity(sim) == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("vertex", range(8))
    def test_every_single_fault_detected(self, vertex):
        _, accepted = run_factory((vertex,))
        assert not accepted

    def test_double_fault_accepted_but_harmful(self):
        sim, accepted = run_factory((1, 6))
        assert accepted
        assert output_fidelity(sim) < 0.5

    def test_leading_coefficient_28(self):
        assert DistillationCurve(Color832Code()).leading_coefficient() == 28

    def test_exact_curve_matches_28p2_at_small_p(self):
        curve = DistillationCurve(Color832Code())
        for p in (1e-3, 1e-4):
            assert curve.output_error(p) == pytest.approx(28 * p * p, rel=0.05)

    def test_acceptance_near_one_at_small_p(self):
        curve = DistillationCurve(Color832Code())
        assert curve.acceptance_rate(1e-3) > 0.99

    def test_pattern_classification_partition(self):
        classes = DistillationCurve(Color832Code()).classify_patterns()
        assert sum(len(v) for v in classes.values()) == 256
        # Odd-weight = detected: 128 patterns.
        assert len(classes["detected"]) == 128

    def test_circuit_t_balance(self):
        circuit = factory_circuit()
        assert circuit.count("T") == 4
        assert circuit.count("T_DAG") == 4

    def test_eq8(self):
        assert distilled_ccz_error(1e-5) == pytest.approx(2.8e-9)


class TestFactoryLayoutAndFleet:
    def test_footprint_tiles(self):
        layout = FactoryLayout(27)
        region = layout.region
        assert region.width == 12 * 27
        assert region.height == 4 * 27  # 3d stage + 1d cultivation row

    def test_atoms_order_25k_at_d27(self):
        assert 2e4 < FactoryLayout(27).num_atoms < 4e4

    def test_cycle_time_milliseconds(self):
        layout = FactoryLayout(27)
        cultivation = CultivationModel(7.7e-7, 27)
        assert 2e-3 < layout.cycle_time(cultivation) < 2e-2

    def test_fleet_meets_consumption(self):
        fleet = size_fleet(22000.0, 27, 1.6e-11)
        assert fleet.production_rate >= 22000.0

    def test_fleet_cap_respected(self):
        fleet = size_fleet(1e9, 27, 1.6e-11, max_factories=192)
        assert fleet.count == 192

    def test_paper_scale_fleet(self):
        # Addition-phase consumption (~22 CCZ/ms) with headroom lands near
        # the paper's 192-factory ceiling.
        fleet = size_fleet(22000.0 / 0.7, 27, 1.6e-11, max_factories=192)
        assert 100 <= fleet.count <= 192


class TestLayoutSynthesis:
    def test_factory_instance_has_reorder_free_layout(self):
        result = synthesize_1d_layout(factory_cnot_layers(), 11, seed=1)
        max_dist, _total, valid = evaluate(result.order, factory_cnot_layers())
        assert valid
        assert max_dist == result.max_distance
        assert result.max_distance <= 7

    def test_identity_layout_evaluation(self):
        layers = [[(0, 1)], [(1, 2)]]
        max_dist, total, valid = evaluate([0, 1, 2], layers)
        assert (max_dist, total, valid) == (1, 2, True)

    def test_crossing_layer_detected(self):
        # Moves 0->3 and 2->1 cross in one layer.
        layers = [[(0, 3), (2, 1)]]
        _max, _total, valid = evaluate([0, 1, 2, 3], layers)
        assert not valid

    def test_search_improves_on_bad_instance(self):
        layers = [[(0, 5)], [(5, 1)], [(1, 4)]]
        result = synthesize_1d_layout(layers, 6, seed=3)
        identity_cost = evaluate(list(range(6)), layers)[0]
        assert result.max_distance <= identity_cost
