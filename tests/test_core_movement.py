"""Tests for the movement-time law (Eq. 1) and derived patch-move times."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import movement
from repro.core.params import PhysicalParams

PHYS = PhysicalParams()


class TestMoveTime:
    def test_eq1_formula(self):
        # 55 um in 200 us calibrates the paper's acceleration (Table I note).
        t = movement.move_time(55e-6, 5500.0)
        assert t == pytest.approx(200e-6, rel=0.01)

    def test_zero_distance(self):
        assert movement.move_time(0.0, 5500.0) == 0.0

    def test_one_site_hop_is_about_93us(self):
        t = movement.move_time_sites(1.0, PHYS)
        assert t == pytest.approx(93e-6, rel=0.02)

    def test_patch_move_d27_is_about_500us(self):
        # Paper Sec. IV.2: moving a patch across one logical pitch ~ 500 us.
        t = movement.patch_move_time(27, PHYS)
        assert t == pytest.approx(485e-6, rel=0.02)
        assert abs(t - PHYS.measure_time) / PHYS.measure_time < 0.05

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            movement.move_time(-1e-6, 5500.0)

    def test_nonpositive_acceleration_rejected(self):
        with pytest.raises(ValueError):
            movement.move_time(1e-6, 0.0)

    @given(st.floats(min_value=1e-9, max_value=1.0))
    def test_sqrt_scaling(self, distance):
        # Quadrupling the distance doubles the time.
        t1 = movement.move_time(distance, 5500.0)
        t2 = movement.move_time(4 * distance, 5500.0)
        assert t2 == pytest.approx(2 * t1, rel=1e-9)

    @given(
        st.floats(min_value=1e-9, max_value=1.0),
        st.floats(min_value=100.0, max_value=1e5),
    )
    def test_roundtrip_with_max_distance(self, distance, acceleration):
        t = movement.move_time(distance, acceleration)
        back = movement.max_move_distance(t, acceleration)
        assert back == pytest.approx(distance, rel=1e-9)

    @given(st.floats(min_value=1e-9, max_value=1.0), st.floats(min_value=1e-9, max_value=1.0))
    def test_monotonic_in_distance(self, d1, d2):
        lo, hi = sorted((d1, d2))
        assert movement.move_time(lo, 5500.0) <= movement.move_time(hi, 5500.0)


class TestBatchMove:
    def test_batch_takes_longest_move(self):
        distances = [1e-6, 5e-6, 25e-6]
        t = movement.batch_move_time(distances, 5500.0)
        assert t == pytest.approx(movement.move_time(25e-6, 5500.0))

    def test_empty_batch_is_instant(self):
        assert movement.batch_move_time([], 5500.0) == 0.0

    def test_batch_of_equal_moves(self):
        t_single = movement.move_time(12e-6, 5500.0)
        t_batch = movement.batch_move_time([12e-6] * 100, 5500.0)
        assert t_batch == pytest.approx(t_single)


class TestMaxMoveDistance:
    def test_inverse_of_move_time(self):
        d = movement.max_move_distance(200e-6, 5500.0)
        assert d == pytest.approx(55e-6, rel=0.01)

    def test_faster_acceleration_covers_more(self):
        slow = movement.max_move_distance(1e-4, 5500.0)
        fast = movement.max_move_distance(1e-4, 11000.0)
        assert fast == pytest.approx(2 * slow)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            movement.max_move_distance(-1.0, 5500.0)
