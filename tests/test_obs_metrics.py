"""Telemetry-layer tests: mergeable metrics, exposition, invariance.

The load-bearing contract is PR 1's worker-count invariance extended to
telemetry: the deterministic counter/histogram families merged from
``jobs=4`` shard deltas must be *identical* to a ``jobs=1`` run of the
same seed.  Around that sit unit tests for the histogram bucket/merge/
percentile math, the snapshot/delta/merge protocol, the registry's
get-or-create contract, and the strict Prometheus parser that CI points
at ``/metrics``.
"""

import math

import pytest

from repro.decoder.engine import DecodingEngine
from repro.noise.dem import extract_dem, last_periodic_fallback
from repro.obs import (
    COUNT_BUCKETS,
    REGISTRY,
    MetricsRegistry,
    metrics_disabled,
    parse_prometheus,
    percentiles,
    render_prometheus,
    run_metadata,
)
from repro.sim.memory import memory_circuit


@pytest.fixture
def registry():
    return MetricsRegistry()


# -- counters and gauges --------------------------------------------------------


def test_counter_inc_and_labels(registry):
    shots = registry.counter("shots_total", "Shots.", ("decoder",))
    shots.labels(decoder="mwpm").inc(5)
    shots.labels(decoder="mwpm").inc(2.5)
    shots.labels(decoder="union_find").inc()
    snap = registry.snapshot()["shots_total"]
    assert snap["type"] == "counter"
    assert snap["series"] == {("mwpm",): 7.5, ("union_find",): 1.0}


def test_counter_rejects_negative(registry):
    errors = registry.counter("errors_total")
    with pytest.raises(ValueError, match="only increase"):
        errors.inc(-1)


def test_gauge_set_and_inc(registry):
    depth = registry.gauge("queue_depth")
    depth.set(3)
    depth.inc(2)
    assert depth.value == 5.0
    depth.set(0)
    assert depth.value == 0.0


def test_redeclare_same_shape_returns_same_family(registry):
    a = registry.counter("hits_total", "Hits.", ("cache",))
    b = registry.counter("hits_total", "Hits.", ("cache",))
    assert a is b


def test_redeclare_different_type_or_labels_is_error(registry):
    registry.counter("x_total", labelnames=("a",))
    with pytest.raises(ValueError, match="already declared"):
        registry.gauge("x_total", labelnames=("a",))
    with pytest.raises(ValueError, match="already declared"):
        registry.counter("x_total", labelnames=("b",))


def test_wrong_label_names_rejected(registry):
    shots = registry.counter("shots_total", labelnames=("decoder",))
    with pytest.raises(ValueError, match="expected labels"):
        shots.labels(decoders="mwpm")


# -- histograms -----------------------------------------------------------------


def test_histogram_bucket_placement(registry):
    hist = registry.histogram("lat", bounds=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.001, 0.005, 0.05, 5.0):
        hist.observe(value)
    snap = registry.snapshot()["lat"]["series"][()]
    # le semantics: 0.0005 and 0.001 both land in the le=0.001 bucket;
    # 5.0 overflows into +Inf.
    assert snap["buckets"] == [2, 1, 1, 1]
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(5.0565)


def test_histogram_percentile_interpolation(registry):
    hist = registry.histogram("lat", bounds=(1.0, 2.0, 4.0))
    for _ in range(10):
        hist.observe(1.5)  # all in the (1, 2] bucket
    # The q-th point interpolates linearly across the containing bucket.
    assert hist.percentile(0.5) == pytest.approx(1.5)
    assert hist.percentile(1.0) == pytest.approx(2.0)
    assert hist.percentile(0.1) == pytest.approx(1.1)


def test_histogram_percentile_empty_and_overflow(registry):
    hist = registry.histogram("lat", bounds=(1.0, 2.0))
    assert math.isnan(hist.percentile(0.5))
    hist.observe(100.0)  # +Inf bucket reports the last finite bound
    assert hist.percentile(0.99) == pytest.approx(2.0)


def test_histogram_bounds_validation(registry):
    with pytest.raises(ValueError, match="ascending"):
        registry.histogram("bad", bounds=(2.0, 1.0))
    with pytest.raises(ValueError, match="implicit"):
        registry.histogram("bad2", bounds=(1.0, math.inf))


def test_histogram_merged_percentile_across_labels(registry):
    hist = registry.histogram("lat", labelnames=("d",), bounds=(1.0, 2.0, 4.0))
    for _ in range(8):
        hist.labels(d="a").observe(0.5)
    for _ in range(2):
        hist.labels(d="b").observe(3.0)
    # 10 observations total; p50 in the first bucket, p95 in the third.
    assert hist.merged_percentile(0.5) == pytest.approx(0.625)
    assert hist.merged_percentile(0.95) > 2.0


def test_count_buckets_cover_batch_sizes():
    assert COUNT_BUCKETS[0] == 1.0
    assert COUNT_BUCKETS[-1] == 65536.0


# -- snapshot / delta / merge ---------------------------------------------------


def test_delta_since_counters_and_histograms(registry):
    shots = registry.counter("shots_total", labelnames=("decoder",))
    lat = registry.histogram("lat", bounds=(1.0, 2.0))
    shots.labels(decoder="mwpm").inc(3)
    lat.observe(0.5)
    base = registry.snapshot()
    shots.labels(decoder="mwpm").inc(2)
    shots.labels(decoder="uf").inc(1)
    lat.observe(1.5)
    delta = registry.delta_since(base)
    assert delta["shots_total"]["series"] == {("mwpm",): 2.0, ("uf",): 1.0}
    assert delta["lat"]["series"][()]["buckets"] == [0, 1, 0]
    assert delta["lat"]["series"][()]["count"] == 1


def test_delta_drops_unchanged_and_gauges(registry):
    registry.counter("quiet_total").inc(4)
    registry.gauge("depth").set(9)
    base = registry.snapshot()
    registry.gauge("depth").set(11)
    assert registry.delta_since(base) == {}


def test_merge_into_other_registry(registry):
    shots = registry.counter("shots_total", labelnames=("decoder",))
    lat = registry.histogram("lat", bounds=(1.0, 2.0))
    base = registry.snapshot()
    shots.labels(decoder="mwpm").inc(5)
    lat.observe(1.5)
    delta = registry.delta_since(base)

    parent = MetricsRegistry()
    parent.counter("shots_total", labelnames=("decoder",)).labels(
        decoder="mwpm"
    ).inc(1)
    parent.merge(delta)
    parent.merge(delta)  # merging twice doubles -- pure addition
    snap = parent.snapshot()
    assert snap["shots_total"]["series"][("mwpm",)] == 11.0
    assert snap["lat"]["series"][()]["count"] == 2


def test_merge_rejects_mismatched_bounds(registry):
    lat = registry.histogram("lat", bounds=(1.0, 2.0))
    base = registry.snapshot()
    lat.observe(1.5)
    delta = registry.delta_since(base)
    parent = MetricsRegistry()
    parent.histogram("lat", bounds=(1.0, 2.0, 4.0))
    with pytest.raises(ValueError, match="bounds differ"):
        parent.merge(delta)


def test_metrics_disabled_suppresses_recording(registry):
    shots = registry.counter("shots_total")
    lat = registry.histogram("lat", bounds=(1.0,))
    with metrics_disabled():
        shots.inc(100)
        lat.observe(0.5)
    assert shots.value == 0.0
    assert registry.snapshot()["lat"]["series"][()]["count"] == 0


def test_reset_zeroes_but_keeps_families(registry):
    shots = registry.counter("shots_total", labelnames=("decoder",))
    shots.labels(decoder="mwpm").inc(7)
    registry.reset()
    assert registry.snapshot()["shots_total"]["series"][("mwpm",)] == 0.0


# -- collectors -----------------------------------------------------------------


def test_collector_appears_in_collect_not_delta(registry):
    def stats():
        return {
            "cache_entries": ("gauge", "Entries.", ("cache",), {("dem",): 4.0}),
        }

    registry.register_collector(stats)
    collected = registry.collect()
    assert collected["cache_entries"]["series"][("dem",)] == 4.0
    assert "cache_entries" not in registry.snapshot()
    assert "cache_entries" not in registry.delta_since({})
    registry.unregister_collector(stats)
    assert "cache_entries" not in registry.collect()


# -- prometheus exposition ------------------------------------------------------


def test_render_parse_round_trip(registry):
    shots = registry.counter("repro_shots_total", "Shots.", ("decoder",))
    shots.labels(decoder="mwpm").inc(12)
    lat = registry.histogram("repro_lat_seconds", "Latency.", bounds=(0.1, 1.0))
    lat.observe(0.05)
    lat.observe(0.5)
    lat.observe(5.0)
    registry.gauge("repro_depth", "Depth.").set(2)
    text = render_prometheus(registry)
    families = parse_prometheus(text)
    assert families["repro_shots_total"]["type"] == "counter"
    samples = {
        (name, tuple(sorted(labels.items()))): value
        for name, labels, value in families["repro_lat_seconds"]["samples"]
    }
    # Buckets cumulate: le=0.1 holds 1, le=1.0 holds 2, +Inf holds all 3.
    assert samples[("repro_lat_seconds_bucket", (("le", "0.1"),))] == 1.0
    assert samples[("repro_lat_seconds_bucket", (("le", "1"),))] == 2.0
    assert samples[("repro_lat_seconds_bucket", (("le", "+Inf"),))] == 3.0
    assert samples[("repro_lat_seconds_count", ())] == 3.0
    assert families["repro_depth"]["samples"] == [("repro_depth", {}, 2.0)]


@pytest.mark.parametrize(
    "text, message",
    [
        ("# TYPE 9bad counter\n9bad 1\n", "invalid metric name"),
        ("# TYPE x counter\nx{le=} 1\n", "malformed"),
        ("# TYPE x wibble\n", "unknown metric type"),
        ("# TYPE x counter\nx 1\nx 2\n", "duplicate sample"),
        ("orphan 1\n", "precedes"),
        (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 2\nh_bucket{le="+Inf"} 1\nh_count 1\nh_sum 1\n',
            "not monotone",
        ),
        (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\nh_count 1\nh_sum 1\n',
            r"missing \+Inf",
        ),
        (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\nh_bucket{le="+Inf"} 2\nh_count 1\nh_sum 1\n',
            "_count",
        ),
    ],
)
def test_parser_rejects_malformed(text, message):
    with pytest.raises(ValueError, match=message):
        parse_prometheus(text)


def test_global_metrics_exposition_is_valid():
    """The real registry (engine/decoder/cache families) renders cleanly."""
    parse_prometheus(render_prometheus())


# -- run metadata ---------------------------------------------------------------


def test_run_metadata_stamp(monkeypatch):
    monkeypatch.setenv("BENCH_TIMESTAMP", "2026-08-08T00:00:00Z")
    meta = run_metadata()
    assert meta["timestamp"] == "2026-08-08T00:00:00Z"
    assert set(meta) >= {"code_version", "hostname", "python", "numpy"}


# -- worker-count invariance of merged telemetry --------------------------------

# Families whose merged values are deterministic functions of
# (seed, shard_shots): pure shot/failure/shape counts, never wall clock.
DETERMINISTIC_FAMILIES = (
    "repro_engine_shots_total",
    "repro_engine_failures_total",
    "repro_engine_shards_total",
    "repro_decode_shots_total",
    "repro_decode_unique_total",
    "repro_decode_batch_unique",
)


def _engine_telemetry(workers):
    REGISTRY.reset()
    circuit = memory_circuit(3, 4, 1e-3)
    with DecodingEngine(
        circuit, "mwpm", shard_shots=256, workers=workers
    ) as engine:
        result = engine.run(2048, seed=7)
    snap = REGISTRY.snapshot()
    return result, {name: snap[name]["series"] for name in DETERMINISTIC_FAMILIES}


def test_merged_telemetry_is_worker_count_invariant():
    """jobs=1 and jobs=4 merge to identical deterministic families."""
    result_1, families_1 = _engine_telemetry(workers=1)
    result_4, families_4 = _engine_telemetry(workers=4)
    assert (result_1.shots, result_1.failures) == (
        result_4.shots,
        result_4.failures,
    )
    assert families_1 == families_4
    assert families_1["repro_engine_shots_total"][()] == 2048.0
    assert families_1["repro_engine_shards_total"][()] == 8.0
    # Decode latency is observable programmatically even though its
    # *values* are wall clock: count/shape only via the families above.
    p = percentiles("repro_decode_seconds", (0.5, 0.99))
    assert not math.isnan(p[0.5]) and p[0.5] <= p[0.99]


# -- periodic-fallback observability --------------------------------------------


def test_periodic_fallback_reason_counted_and_surfaced():
    REGISTRY.reset()
    short = memory_circuit(3, 4, 1e-3)  # 4 rounds < surrogate floor
    extract_dem(short, method="auto")
    assert last_periodic_fallback() == "few_reps"
    snap = REGISTRY.snapshot()
    series = snap["repro_periodic_fallback_total"]["series"]
    assert series.get(("few_reps",), 0.0) >= 1.0

    with DecodingEngine(memory_circuit(3, 4, 1e-3), "mwpm") as engine:
        assert engine.periodic_fallback_reason == "few_reps"
    with DecodingEngine(memory_circuit(3, 12, 1e-3), "mwpm") as engine:
        assert engine.periodic_fallback_reason is None
