"""Tests for Pauli-string algebra."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codes.pauli import Pauli, commutation_matrix, mutually_commuting, pauli


def random_pauli_strategy(n: int):
    return st.tuples(
        st.lists(st.integers(0, 1), min_size=n, max_size=n),
        st.lists(st.integers(0, 1), min_size=n, max_size=n),
    ).map(lambda xz: Pauli(xz[0], xz[1]))


class TestConstruction:
    def test_from_string(self):
        p = Pauli.from_string("XIZY")
        assert list(p.x) == [1, 0, 0, 1]
        assert list(p.z) == [0, 0, 1, 1]

    def test_from_string_with_sign(self):
        assert Pauli.from_string("-X").phase_power == 2
        assert Pauli.from_string("iZ").phase_power == 1
        assert Pauli.from_string("-iY").phase_power == 3
        assert Pauli.from_string("+X").phase_power == 0

    def test_invalid_char_rejected(self):
        with pytest.raises(ValueError):
            Pauli.from_string("XQ")

    def test_sparse_constructor(self):
        p = pauli(5, xs=[0, 2], zs=[2, 4])
        assert repr(p) == "+XIYIZ"

    def test_sparse_out_of_range(self):
        with pytest.raises(ValueError):
            pauli(3, xs=[3])

    def test_identity(self):
        p = Pauli.identity(4)
        assert p.is_identity()
        assert p.weight == 0

    def test_weight_and_support(self):
        p = Pauli.from_string("XIYZI")
        assert p.weight == 3
        assert p.support == (0, 2, 3)


class TestCommutation:
    def test_x_z_anticommute(self):
        x = Pauli.from_string("X")
        z = Pauli.from_string("Z")
        assert not x.commutes_with(z)

    def test_xx_zz_commute(self):
        assert Pauli.from_string("XX").commutes_with(Pauli.from_string("ZZ"))

    def test_disjoint_support_commutes(self):
        assert Pauli.from_string("XII").commutes_with(Pauli.from_string("IZZ"))

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Pauli.from_string("X").commutes_with(Pauli.from_string("XX"))

    @given(random_pauli_strategy(6), random_pauli_strategy(6))
    def test_commutation_symmetric(self, p, q):
        assert p.commutes_with(q) == q.commutes_with(p)

    @given(random_pauli_strategy(5))
    def test_self_commutes(self, p):
        assert p.commutes_with(p)


class TestProduct:
    def test_x_times_z_is_minus_iy(self):
        prod = Pauli.from_string("X") * Pauli.from_string("Z")
        assert prod.equal_up_to_phase(Pauli.from_string("Y"))
        assert prod.phase_power == 3  # XZ = -iY

    def test_z_times_x_is_plus_iy(self):
        prod = Pauli.from_string("Z") * Pauli.from_string("X")
        assert prod.phase_power == 1  # ZX = iY

    def test_y_squared_is_identity(self):
        prod = Pauli.from_string("Y") * Pauli.from_string("Y")
        assert prod.is_identity()

    def test_xy_product(self):
        # XY = iZ
        prod = Pauli.from_string("X") * Pauli.from_string("Y")
        assert prod.equal_up_to_phase(Pauli.from_string("Z"))
        assert prod.phase_power == 1

    @given(random_pauli_strategy(4))
    def test_square_is_identity(self, p):
        # Every Hermitian Pauli squares to +I (Y^2 = (iXZ)^2 = +I).
        sq = p * p
        assert sq.is_identity()

    @given(random_pauli_strategy(5), random_pauli_strategy(5))
    def test_product_support_is_xor(self, p, q):
        prod = p * q
        assert np.array_equal(prod.x, p.x ^ q.x)
        assert np.array_equal(prod.z, p.z ^ q.z)

    @given(random_pauli_strategy(4), random_pauli_strategy(4))
    def test_commute_iff_products_equal(self, p, q):
        pq = p * q
        qp = q * p
        assert pq.equal_up_to_phase(qp)
        if p.commutes_with(q):
            assert pq.phase_power == qp.phase_power
        else:
            assert (pq.phase_power - qp.phase_power) % 4 == 2

    @given(random_pauli_strategy(4), random_pauli_strategy(4), random_pauli_strategy(4))
    def test_associative(self, p, q, r):
        assert (p * q) * r == p * (q * r)


class TestGroupHelpers:
    def test_commutation_matrix(self):
        group = [Pauli.from_string("XX"), Pauli.from_string("ZZ"), Pauli.from_string("ZI")]
        mat = commutation_matrix(group)
        assert mat[0, 1] == 0
        assert mat[0, 2] == 1
        assert np.array_equal(mat, mat.T)

    def test_mutually_commuting(self):
        stabilizers = [Pauli.from_string("XXXX"), Pauli.from_string("ZZII"), Pauli.from_string("IIZZ")]
        assert mutually_commuting(stabilizers)
        assert not mutually_commuting([Pauli.from_string("XI"), Pauli.from_string("ZI")])

    def test_hash_consistency(self):
        a = Pauli.from_string("XZ")
        b = pauli(2, xs=[0], zs=[1])
        assert a == b
        assert hash(a) == hash(b)
