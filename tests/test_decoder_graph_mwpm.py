"""Tests for decoding-graph construction and the MWPM decoder."""

import numpy as np
import pytest

from repro.decoder.graph import BOUNDARY, DecodingGraph, Edge
from repro.decoder.mwpm import MWPMDecoder
from repro.sim.frame import DetectorErrorModel, ErrorMechanism


def simple_dem():
    """A 1-D repetition-code-like DEM: chain of 3 detectors + boundaries."""
    mechanisms = [
        ErrorMechanism(0.01, (0,), (0,)),
        ErrorMechanism(0.01, (0, 1), ()),
        ErrorMechanism(0.01, (1, 2), ()),
        ErrorMechanism(0.01, (2,), ()),
    ]
    return DetectorErrorModel(mechanisms, num_detectors=3, num_observables=1)


class TestEdge:
    def test_weight_positive_below_half(self):
        assert Edge((0,), 0.01).weight > 0

    def test_weight_monotone(self):
        assert Edge((0,), 0.01).weight > Edge((0,), 0.1).weight


class TestDecodingGraph:
    def test_from_dem_counts(self):
        graph = DecodingGraph.from_dem(simple_dem())
        assert len(graph.edges) == 4

    def test_boundary_edge_lookup(self):
        graph = DecodingGraph.from_dem(simple_dem())
        assert graph.edge_between(0, BOUNDARY) is not None
        assert graph.edge_between(0, 1) is not None
        assert graph.edge_between(0, 2) is None

    def test_parallel_edges_merge(self):
        dem = DetectorErrorModel(
            [ErrorMechanism(0.1, (0, 1), ()), ErrorMechanism(0.1, (0, 1), ())],
            2,
            0,
        )
        graph = DecodingGraph.from_dem(dem)
        assert len(graph.edges) == 1
        assert graph.edges[0].probability == pytest.approx(0.18)

    def test_hyperedge_decomposed_into_known_blocks(self):
        mechanisms = [
            ErrorMechanism(0.01, (0, 1), (0,)),
            ErrorMechanism(0.01, (2, 3), (1,)),
            ErrorMechanism(0.02, (0, 1, 2, 3), (0, 1)),
        ]
        dem = DetectorErrorModel(mechanisms, 4, 2)
        graph = DecodingGraph.from_dem(dem)
        edge01 = graph.edge_between(0, 1)
        edge23 = graph.edge_between(2, 3)
        assert edge01 is not None and edge23 is not None
        # The composite merged into the two blocks, inheriting their obs.
        assert edge01.observables == frozenset({0})
        assert edge23.observables == frozenset({1})
        assert edge01.probability == pytest.approx(0.01 + 0.02 - 2 * 0.01 * 0.02)

    def test_undetectable_mechanism_ignored(self):
        dem = DetectorErrorModel([ErrorMechanism(0.3, (), (0,))], 1, 1)
        graph = DecodingGraph.from_dem(dem)
        assert graph.edges == []

    def test_three_detector_edge_rejected_directly(self):
        graph = DecodingGraph(3, 0)
        with pytest.raises(ValueError):
            graph.add_mechanism((0, 1, 2), 0.1, frozenset())


class TestMWPMDecoder:
    def test_empty_syndrome_predicts_nothing(self):
        decoder = MWPMDecoder(DecodingGraph.from_dem(simple_dem()))
        assert not decoder.decode(np.zeros(3, dtype=np.uint8)).any()

    def test_single_defect_matches_to_boundary(self):
        decoder = MWPMDecoder(DecodingGraph.from_dem(simple_dem()))
        syndrome = np.array([1, 0, 0], dtype=np.uint8)
        # Matching detector 0 to the boundary crosses the observable edge.
        assert decoder.decode(syndrome)[0] == 1

    def test_pair_matches_internally(self):
        decoder = MWPMDecoder(DecodingGraph.from_dem(simple_dem()))
        syndrome = np.array([1, 1, 0], dtype=np.uint8)
        # The (0,1) edge carries no observable: no logical flip predicted.
        assert decoder.decode(syndrome)[0] == 0

    def test_far_defect_prefers_other_boundary(self):
        decoder = MWPMDecoder(DecodingGraph.from_dem(simple_dem()))
        syndrome = np.array([0, 0, 1], dtype=np.uint8)
        assert decoder.decode(syndrome)[0] == 0

    def test_batch_decoding_shape(self):
        decoder = MWPMDecoder(DecodingGraph.from_dem(simple_dem()))
        out = decoder.decode_batch(np.zeros((5, 3), dtype=np.uint8))
        assert out.shape == (5, 1)

    def test_weighting_breaks_ties_toward_likelier_path(self):
        mechanisms = [
            ErrorMechanism(0.2, (0,), (0,)),  # cheap boundary with flip
            ErrorMechanism(0.001, (0, 1), ()),
            ErrorMechanism(0.2, (1,), ()),
        ]
        dem = DetectorErrorModel(mechanisms, 2, 1)
        decoder = MWPMDecoder(DecodingGraph.from_dem(dem))
        # Two defects: going through the middle edge is expensive; matching
        # each to its boundary is cheaper and flips the observable once.
        syndrome = np.array([1, 1], dtype=np.uint8)
        assert decoder.decode(syndrome)[0] == 1
