"""Tests for the factoring estimator, optimizer, chemistry and experiments."""

import pytest

from repro.algorithms.chemistry import estimate_chemistry, fermi_hubbard_reference
from repro.algorithms.factoring import FactoringParameters, estimate_factoring
from repro.algorithms.optimizer import optimize_factoring, table_ii
from repro.baselines.qldpc import QLDPCStorageModel
from repro.core.params import ArchitectureConfig, ErrorParams
from repro.experiments import fig2, fig6, fig12, fig13, fig14


class TestFactoringHeadline:
    @pytest.fixture(scope="class")
    def estimate(self):
        return estimate_factoring()

    def test_runtime_about_5_6_days(self, estimate):
        assert estimate.runtime_seconds / 86400 == pytest.approx(5.6, rel=0.15)

    def test_qubits_about_19_million(self, estimate):
        assert estimate.physical_qubits == pytest.approx(19e6, rel=0.25)

    def test_factories_near_192(self, estimate):
        assert 120 <= estimate.num_factories <= 192

    def test_lookup_and_addition_times(self, estimate):
        assert estimate.lookup_time == pytest.approx(0.17, abs=0.03)
        assert estimate.addition_time == pytest.approx(0.28, abs=0.02)

    def test_ccz_count(self, estimate):
        assert estimate.total_ccz == pytest.approx(3e9, rel=0.15)

    def test_budget_closes_at_mle_lambda(self):
        # With the paper's MLE-decoder fit (Lambda ~ 20) the d = 27 run
        # meets a ~10% total budget; the conservative Lambda = 10 needs
        # d = 31+ (documented in EXPERIMENTS.md).
        config = ArchitectureConfig(error=ErrorParams(p_thres=2e-2))
        est = estimate_factoring(config=config)
        assert est.logical_error < 0.15

    def test_idle_storage_4_to_6_million(self, estimate):
        idle = estimate.space_breakdown["lookup"]["storage"]
        assert 2e6 < idle < 8e6

    def test_qldpc_saving_about_20_percent(self, estimate):
        idle = estimate.space_breakdown["lookup"]["storage"]
        reduction = QLDPCStorageModel().footprint_reduction(
            estimate.as_resource_estimate(), idle
        )
        assert 0.1 < reduction < 0.35

    def test_scaling_with_modulus(self):
        small = estimate_factoring(FactoringParameters(modulus_bits=1024))
        big = estimate_factoring(FactoringParameters(modulus_bits=2048))
        assert small.runtime_seconds < big.runtime_seconds
        assert small.physical_qubits < big.physical_qubits


class TestOptimizer:
    @pytest.fixture(scope="class")
    def result(self):
        return optimize_factoring()

    def test_windows_match_table_ii(self, result):
        assert result.parameters.window_exp == 3
        assert result.parameters.window_mul in (3, 4)

    def test_runway_separation_far_below_ge(self, result):
        assert result.parameters.runway_separation <= 128

    def test_optimum_beats_ge_parameters(self, result):
        ge_like = FactoringParameters(
            window_exp=5, window_mul=5, runway_separation=1024
        )
        ge_est = estimate_factoring(ge_like)
        assert result.spacetime_volume < (
            ge_est.physical_qubits * ge_est.runtime_seconds
        )

    def test_table_ii_contains_both_columns(self):
        rows = table_ii()
        assert set(rows) == {"ours", "gidney_ekera"}
        assert rows["gidney_ekera"]["runway_separation"] == 1024


class TestChemistry:
    def test_reference_instance_estimates(self):
        est = estimate_chemistry(fermi_hubbard_reference())
        assert est.runtime_seconds > 0
        assert est.total_ccz > 1e8
        assert est.physical_qubits > 1e5

    def test_accuracy_drives_runtime(self):
        base = fermi_hubbard_reference()
        loose = estimate_chemistry(
            type(base)(base.num_orbitals, base.thc_rank, base.lambda_value, 1e-2)
        )
        tight = estimate_chemistry(base)
        assert tight.runtime_seconds > loose.runtime_seconds


class TestExperiments:
    def test_fig2_ordering(self):
        points = fig2.generate()
        ours = points[0]
        assert all(ours.days < p.days for p in points[1:])
        assert fig2.speedup_vs_ge() > 20

    def test_fig6b_monotone_beyond_optimum(self):
        curve = fig6.generate_fig6b()
        assert curve[8.0] > curve[1.0]

    def test_fig12_fanout_dominates_lookup_error(self):
        est = fig12.generate()
        fracs = fig12.error_fractions(est)
        assert abs(sum(fracs.values()) - 1.0) < 1e-9

    def test_fig13_volume_rises_with_alpha(self):
        curve = fig13.volume_vs_alpha(alphas=(1 / 6, 1 / 2))
        assert curve[1 / 2] > curve[1 / 6]

    def test_fig13_threshold_drop_under_2x(self):
        assert 1.0 < fig13.threshold_drop_cost() < 2.0

    def test_fig14_tradeoff_monotone(self):
        points = fig14.qubit_time_tradeoff(runway_separations=(48, 96, 384))
        days = [d for _, d in points]
        assert days == sorted(days)


class TestCLI:
    def test_headline_runs(self, capsys):
        from repro.__main__ import main

        main([])
        out = capsys.readouterr().out
        assert "transversal" in out
        assert "days" in out

    def test_sections_run(self, capsys):
        from repro.__main__ import main

        main(["table1", "fig6b"])
        out = capsys.readouterr().out
        assert "site_spacing_um" in out

    def test_unknown_section_rejected(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["nope"])
