"""Tests for the transversal logical-error model (Eqs. 2-6)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import logical_error as le
from repro.core.params import ErrorParams

ERR = ErrorParams()


class TestMemoryError:
    def test_eq2_value_d3(self):
        # C * (1/Lambda)^2 = 0.1 * 0.01 = 1e-3 for d = 3, Lambda = 10.
        assert le.memory_error_per_round(3, ERR) == pytest.approx(1e-3)

    def test_eq2_value_d27(self):
        assert le.memory_error_per_round(27, ERR) == pytest.approx(0.1 * 10**-14)

    def test_incrementing_d_by_2_gains_lambda(self):
        p5 = le.memory_error_per_round(5, ERR)
        p7 = le.memory_error_per_round(7, ERR)
        assert p5 / p7 == pytest.approx(ERR.lam)

    def test_bad_distance_rejected(self):
        with pytest.raises(ValueError):
            le.memory_error_per_round(0, ERR)

    @given(st.integers(min_value=3, max_value=51).filter(lambda d: d % 2 == 1))
    def test_monotone_decreasing_in_distance(self, d):
        assert le.memory_error_per_round(d + 2, ERR) < le.memory_error_per_round(d, ERR)


class TestWeightedError:
    def test_reduces_to_memory_with_single_source(self):
        # A single source at p_phys with weight 1 reproduces Eq. (2).
        p = le.weighted_error_per_round(9, ERR, [ERR.p_phys], [1.0])
        assert p == pytest.approx(le.memory_error_per_round(9, ERR))

    def test_weights_scale_effective_rate(self):
        base = le.weighted_error_per_round(9, ERR, [ERR.p_phys], [1.0])
        heavier = le.weighted_error_per_round(9, ERR, [ERR.p_phys], [2.0])
        assert heavier == pytest.approx(base * 2 ** ((9 + 1) / 2))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            le.weighted_error_per_round(9, ERR, [1e-3], [1.0, 2.0])


class TestTransversalCnotError:
    def test_memory_limit_at_small_x(self):
        # As x -> 0 the per-CNOT error approaches 2/x rounds of memory error.
        x = 1e-4
        got = le.transversal_cnot_error(15, ERR, x)
        expected = (2.0 / x) * le.memory_error_per_round(15, ERR)
        assert got == pytest.approx(expected, rel=1e-2)

    def test_elevated_noise_at_x1(self):
        # At one CNOT per round the base becomes (alpha + 1)/Lambda.
        got = le.transversal_cnot_error(11, ERR, 1.0)
        base = (ERR.alpha + 1.0) / ERR.lam
        assert got == pytest.approx(2 * ERR.prefactor_c * base**6)

    def test_nonpositive_x_rejected(self):
        with pytest.raises(ValueError):
            le.transversal_cnot_error(11, ERR, 0.0)

    @given(st.floats(min_value=0.05, max_value=8.0))
    def test_positive(self, x):
        assert le.transversal_cnot_error(21, ERR, x) > 0


class TestEffectiveThreshold:
    def test_alpha_one_sixth_gives_0p86_percent(self):
        # Paper: consistent with the >= 0.87% threshold of Ref. [17].
        assert le.effective_threshold(ERR, 1.0) == pytest.approx(0.0086, rel=0.01)

    def test_alpha_one_half_gives_0p67_percent(self):
        err = ERR.rescaled(alpha=0.5)
        assert le.effective_threshold(err, 1.0) == pytest.approx(0.0067, rel=0.01)

    def test_no_gates_recovers_bare_threshold(self):
        assert le.effective_threshold(ERR, 0.0) == pytest.approx(ERR.p_thres)

    def test_monotone_decreasing_in_x(self):
        thresholds = [le.effective_threshold(ERR, x) for x in (0.0, 0.5, 1.0, 2.0, 4.0)]
        assert thresholds == sorted(thresholds, reverse=True)


class TestRequiredDistance:
    def test_paper_regime_near_d27(self):
        # Target ~1e-12 per CNOT per qubit at 1 CNOT/round: paper picks d=27.
        d = le.required_distance(1e-12, ERR, 1.0)
        assert d in (23, 25, 27)

    def test_meets_target(self):
        d = le.required_distance(1e-12, ERR, 1.0)
        assert le.transversal_cnot_error(d, ERR, 1.0) <= 1e-12
        assert le.transversal_cnot_error(d - 2, ERR, 1.0) > 1e-12

    def test_odd(self):
        for target in (1e-6, 1e-9, 1e-12, 1e-15):
            assert le.required_distance(target, ERR, 1.0) % 2 == 1

    def test_above_threshold_rejected(self):
        hot = ErrorParams(p_phys=2e-2)
        with pytest.raises(ValueError):
            le.required_distance(1e-12, hot, 1.0)

    def test_memory_variant(self):
        d = le.required_distance_memory(1e-12, ERR)
        assert le.memory_error_per_round(d, ERR) <= 1e-12
        assert d % 2 == 1

    @given(st.floats(min_value=0.1, max_value=4.0))
    def test_distance_grows_with_gate_rate(self, x):
        assert le.required_distance(1e-12, ERR, x) >= le.required_distance(1e-12, ERR, 0.05)


class TestCnotVolume:
    def test_finite_below_threshold(self):
        assert math.isfinite(le.cnot_spacetime_volume(1.0, ERR))

    def test_infinite_above_effective_threshold(self):
        hot = ErrorParams(p_phys=1.2e-2)
        assert le.cnot_spacetime_volume(1.0, hot) == math.inf

    def test_optimum_at_one_or_more_cnots_per_round(self):
        # Paper Fig. 6(b): optimal SE rounds per CNOT is <= 1 at p = 1e-3.
        best = le.optimal_cnots_per_round(ERR)
        assert best >= 1.0

    def test_sparser_se_wins_at_high_noise(self):
        # Close to threshold, diluting the gate noise (x < 1) pays off.
        hot = ErrorParams(p_phys=8e-3)
        best = le.optimal_cnots_per_round(hot)
        assert best <= 0.5

    def test_volume_shape_has_interior_minimum(self):
        xs = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0]
        vols = [le.cnot_spacetime_volume(x, ERR) for x in xs]
        best = min(range(len(xs)), key=lambda i: vols[i])
        assert 0 < best  # not minimized by the sparsest extreme
