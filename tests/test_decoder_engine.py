"""Tests for the batched Monte-Carlo decoding engine and decoder fixes.

Covers the registry, dedup-vs-naive prediction equality for all three
decoders, bit-identical results for 1 vs. N workers, streaming early-stop,
the MWPM odd-defect guard, and union-find zero-weight growth.
"""

import numpy as np
import pytest

from repro.decoder.base import BatchDecoder, Decoder
from repro.decoder.engine import (
    DecodingEngine,
    available_decoders,
    make_decoder,
    register_decoder,
)
from repro.decoder.graph import DecodingGraph
from repro.decoder.mwpm import MWPMDecoder
from repro.decoder.sequential import SequentialCNOTDecoder
from repro.decoder.union_find import UnionFindDecoder
from repro.sim.frame import DetectorErrorModel, ErrorMechanism, FrameSimulator
from repro.sim.memory import memory_circuit, transversal_cnot_experiment


@pytest.fixture(scope="module")
def memory_setup():
    """d=3 memory circuit with its DEM and a sampled syndrome batch."""
    circuit = memory_circuit(3, 3, 0.005)
    sim = FrameSimulator(circuit, rng=np.random.default_rng(7))
    dem = sim.detector_error_model()
    detectors, observables = sim.sample(300)
    return circuit, dem, detectors, observables


class TestRegistry:
    def test_builtin_decoders_listed(self):
        names = available_decoders()
        for expected in ("mwpm", "union_find", "sequential"):
            assert expected in names

    def test_make_decoder_types(self, memory_setup):
        _, dem, _, _ = memory_setup
        assert isinstance(make_decoder("mwpm", dem), MWPMDecoder)
        assert isinstance(make_decoder("union_find", dem), UnionFindDecoder)

    def test_decoders_satisfy_protocol(self, memory_setup):
        _, dem, _, _ = memory_setup
        assert isinstance(make_decoder("mwpm", dem), Decoder)
        assert isinstance(make_decoder("union_find", dem), Decoder)

    def test_unknown_name_rejected(self, memory_setup):
        _, dem, _, _ = memory_setup
        with pytest.raises(ValueError, match="unknown decoder"):
            make_decoder("nope", dem)

    def test_sequential_requires_metadata(self, memory_setup):
        _, dem, _, _ = memory_setup
        with pytest.raises(ValueError, match="detector_meta"):
            make_decoder("sequential", dem)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_decoder("mwpm", lambda dem, **kw: None)

    def test_sequential_builds_with_metadata(self):
        builder = transversal_cnot_experiment(3, 4, 1e-3, [1])
        dem = FrameSimulator(builder.circuit).detector_error_model()
        dec = make_decoder("sequential", dem, detector_meta=builder.detector_meta)
        assert isinstance(dec, SequentialCNOTDecoder)


class TestDedupEquality:
    """decode_batch with dedup must be bit-identical to the per-shot loop."""

    @pytest.mark.parametrize("name", ["mwpm", "union_find"])
    def test_memory_decoders(self, memory_setup, name):
        _, dem, detectors, _ = memory_setup
        decoder = make_decoder(name, dem)
        np.testing.assert_array_equal(
            decoder.decode_batch(detectors),
            decoder.decode_batch(detectors, dedup=False),
        )

    def test_sequential_decoder(self):
        builder = transversal_cnot_experiment(3, 4, 0.004, [1, 2])
        sim = FrameSimulator(builder.circuit, rng=np.random.default_rng(9))
        dem = sim.detector_error_model()
        decoder = make_decoder("sequential", dem, detector_meta=builder.detector_meta)
        detectors, _ = sim.sample(200)
        np.testing.assert_array_equal(
            decoder.decode_batch(detectors),
            decoder.decode_batch(detectors, dedup=False),
        )

    def test_random_syndromes(self, memory_setup):
        # Arbitrary (not just sampled) syndrome rows dedup identically.
        _, dem, _, _ = memory_setup
        rng = np.random.default_rng(21)
        syndromes = (rng.random((60, dem.num_detectors)) < 0.1).astype(np.uint8)
        decoder = make_decoder("mwpm", dem)
        np.testing.assert_array_equal(
            decoder.decode_batch(syndromes),
            decoder.decode_batch(syndromes, dedup=False),
        )

    def test_empty_batch(self, memory_setup):
        _, dem, _, _ = memory_setup
        decoder = make_decoder("mwpm", dem)
        out = decoder.decode_batch(np.zeros((0, dem.num_detectors), dtype=np.uint8))
        assert out.shape == (0, dem.num_observables)

    def test_zero_detector_circuit(self, memory_setup):
        # A (shots, 0) syndrome table must still yield one row per shot.
        _, dem, _, _ = memory_setup
        decoder = make_decoder("mwpm", dem)
        syndromes = np.zeros((5, 0), dtype=np.uint8)
        np.testing.assert_array_equal(
            decoder.decode_batch(syndromes),
            decoder.decode_batch(syndromes, dedup=False),
        )


class TestEngineDeterminism:
    def test_run_worker_invariance(self, memory_setup):
        circuit, _, _, _ = memory_setup
        results = []
        for workers in (1, 4):
            engine = DecodingEngine(
                circuit, "mwpm", shard_shots=128, workers=workers
            )
            res = engine.run(700, seed=3)
            results.append((res.shots, res.failures, res.shards))
        assert results[0] == results[1]

    def test_run_repeatable(self, memory_setup):
        circuit, _, _, _ = memory_setup
        engine = DecodingEngine(circuit, "mwpm", shard_shots=128)
        a = engine.run(500, seed=5)
        b = engine.run(500, seed=5)
        assert (a.shots, a.failures) == (b.shots, b.failures)

    def test_partial_last_shard(self, memory_setup):
        circuit, _, _, _ = memory_setup
        engine = DecodingEngine(circuit, "mwpm", shard_shots=128)
        res = engine.run(300, seed=5)
        assert res.shots == 300
        assert res.shards == 3

    def test_run_until_worker_invariance(self, memory_setup):
        circuit, _, _, _ = memory_setup
        results = []
        for workers in (1, 3):
            engine = DecodingEngine(
                circuit, "mwpm", shard_shots=64, workers=workers
            )
            res = engine.run_until(4, max_shots=20_000, seed=13)
            results.append((res.shots, res.failures, res.shards))
        assert results[0] == results[1]


class TestEarlyStop:
    def test_reaches_target_failures(self, memory_setup):
        circuit, _, _, _ = memory_setup
        engine = DecodingEngine(circuit, "mwpm", shard_shots=64)
        res = engine.run_until(4, max_shots=50_000, seed=17)
        assert res.failures >= 4
        assert res.shots < 50_000
        assert res.shots == res.shards * 64

    def test_noiseless_hits_shot_cap(self):
        engine = DecodingEngine(memory_circuit(3, 3, 0.0), "mwpm", shard_shots=64)
        res = engine.run_until(1, max_shots=200, seed=1)
        assert res.failures == 0
        assert res.shots == 200

    def test_invalid_arguments_rejected(self, memory_setup):
        circuit, _, _, _ = memory_setup
        engine = DecodingEngine(circuit, "mwpm")
        with pytest.raises(ValueError):
            engine.run_until(0, max_shots=100)
        with pytest.raises(ValueError):
            engine.run_until(1, max_shots=0)
        with pytest.raises(ValueError):
            DecodingEngine(circuit, "mwpm", shard_shots=0)
        with pytest.raises(ValueError):
            DecodingEngine(circuit, "mwpm", workers=0)


class TestMWPMMatchers:
    def test_dp_agrees_with_blossom(self, memory_setup):
        _, dem, detectors, observables = memory_setup
        graph = DecodingGraph.from_dem(dem)
        dp_failures = int(
            (MWPMDecoder(graph).decode_batch(detectors)[:, 0] ^ observables[:, 0]).sum()
        )
        blossom_failures = int(
            (
                MWPMDecoder(graph, matcher="blossom").decode_batch(detectors)[:, 0]
                ^ observables[:, 0]
            ).sum()
        )
        # Both are exact MWPM; degenerate ties may flip individual shots,
        # but the failure counts must agree to within a sliver.
        assert abs(dp_failures - blossom_failures) <= 2

    def test_unknown_matcher_rejected(self, memory_setup):
        _, dem, _, _ = memory_setup
        with pytest.raises(ValueError, match="matcher"):
            MWPMDecoder(DecodingGraph.from_dem(dem), matcher="greedy")

    def test_large_defect_count_falls_back_to_blossom(self, memory_setup):
        # > _DP_MATCH_LIMIT defects exercises the blossom path in "auto".
        _, dem, _, _ = memory_setup
        decoder = MWPMDecoder(DecodingGraph.from_dem(dem))
        syndrome = np.zeros(dem.num_detectors, dtype=np.uint8)
        syndrome[:14] = 1
        assert decoder.decode(syndrome).shape == (dem.num_observables,)


class TestMWPMOddDefectGuard:
    def _boundaryless_graph(self) -> DecodingGraph:
        # A 3-detector chain with no boundary edges: an odd defect count
        # admits no perfect matching.
        graph = DecodingGraph(num_detectors=3, num_observables=1)
        graph.add_mechanism((0, 1), 0.01, frozenset())
        graph.add_mechanism((1, 2), 0.01, frozenset({0}))
        return graph

    def test_odd_defects_without_boundary_raise(self):
        decoder = MWPMDecoder(self._boundaryless_graph())
        with pytest.raises(ValueError, match="not perfect"):
            decoder.decode(np.array([1, 1, 1], dtype=np.uint8))

    def test_even_defects_without_boundary_decode(self):
        decoder = MWPMDecoder(self._boundaryless_graph())
        assert decoder.decode(np.array([1, 0, 1], dtype=np.uint8))[0] == 1

    def test_boundary_restores_odd_decoding(self):
        graph = self._boundaryless_graph()
        graph.add_mechanism((0,), 0.01, frozenset())
        decoder = MWPMDecoder(graph)
        # With a boundary path the odd syndrome decodes instead of raising.
        assert decoder.decode(np.array([1, 1, 1], dtype=np.uint8)).shape == (1,)


class TestUnionFindZeroWeight:
    def test_railed_probability_converges(self):
        # p = 0.5 rails the edge weight to ~4e-6; growth must not stall.
        dem = DetectorErrorModel(
            [
                ErrorMechanism(0.5, (0,), (0,)),
                ErrorMechanism(0.5, (0, 1), ()),
                ErrorMechanism(0.01, (1, 2), ()),
                ErrorMechanism(0.01, (2,), ()),
            ],
            3,
            1,
        )
        decoder = UnionFindDecoder(DecodingGraph.from_dem(dem))
        out = decoder.decode(np.array([1, 0, 0], dtype=np.uint8))
        assert out.shape == (1,)

    def test_convergence_error_reports_cluster_state(self, monkeypatch):
        dem = DetectorErrorModel(
            [ErrorMechanism(0.01, (0,), (0,)), ErrorMechanism(0.01, (0, 1), ())],
            2,
            1,
        )
        decoder = UnionFindDecoder(DecodingGraph.from_dem(dem))
        # Sever the adjacency so defect 1 can never become valid.
        monkeypatch.setattr(decoder, "_adjacency", {})
        with pytest.raises(RuntimeError, match="invalid clusters"):
            decoder.decode(np.array([0, 1], dtype=np.uint8))


class TestEngineAnalysisIntegration:
    def test_any_observable_failure_mode(self):
        builder = transversal_cnot_experiment(3, 4, 0.004, [1, 2])
        engine = DecodingEngine(
            builder.circuit,
            "sequential",
            detector_meta=builder.detector_meta,
            observable=None,
            shard_shots=128,
        )
        res = engine.run(256, seed=3)
        assert res.shots == 256
        assert 0 <= res.failures <= 256

    def test_prebuilt_decoder_accepted(self, memory_setup):
        circuit, dem, _, _ = memory_setup
        decoder = make_decoder("union_find", dem)
        engine = DecodingEngine(circuit, decoder, shard_shots=128)
        res = engine.run(256, seed=3)
        assert res.shots == 256


class TestPackedPipeline:
    """Packed and unpacked engine paths must agree bit for bit."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_packed_matches_unpacked_engine(self, memory_setup, workers):
        circuit, _, _, _ = memory_setup
        results = []
        for packed in (True, False):
            with DecodingEngine(
                circuit, "mwpm", shard_shots=128, workers=workers, packed=packed
            ) as engine:
                res = engine.run(700, seed=3)
            results.append((res.shots, res.failures, res.shards))
        assert results[0] == results[1]

    def test_packed_matches_unpacked_any_observable(self):
        builder = transversal_cnot_experiment(3, 4, 0.004, [1, 2])
        results = []
        for packed in (True, False):
            engine = DecodingEngine(
                builder.circuit,
                "sequential",
                detector_meta=builder.detector_meta,
                observable=None,
                shard_shots=128,
                packed=packed,
            )
            res = engine.run(256, seed=3)
            results.append((res.shots, res.failures))
        assert results[0] == results[1]

    def test_decode_packed_matches_decode_batch(self, memory_setup):
        _, dem, detectors, _ = memory_setup
        decoder = make_decoder("mwpm", dem)
        packed = np.packbits(detectors, axis=1)
        np.testing.assert_array_equal(
            decoder.decode_packed(packed, dem.num_detectors),
            decoder.decode_batch(detectors),
        )
        np.testing.assert_array_equal(
            decoder.decode_packed(packed, dem.num_detectors, dedup=False),
            decoder.decode_batch(detectors, dedup=False),
        )

    def test_collect_matches_reference_sampling(self, memory_setup):
        circuit, _, _, _ = memory_setup
        engine = DecodingEngine(circuit, "mwpm", shard_shots=128)
        det_keys, obs_keys = engine.collect(300, seed=9)
        assert det_keys.shape == (300, (circuit.num_detectors + 7) // 8)
        root = np.random.SeedSequence(9)
        sim = FrameSimulator(circuit)
        parts = [
            sim.sample(size, rng=np.random.default_rng(child))[0]
            for size, child in zip([128, 128, 44], root.spawn(3))
        ]
        np.testing.assert_array_equal(
            np.unpackbits(det_keys, axis=1, count=circuit.num_detectors),
            np.concatenate(parts),
        )

    def test_collect_worker_invariance(self, memory_setup):
        circuit, _, _, _ = memory_setup
        tables = []
        for workers in (1, 2):
            with DecodingEngine(
                circuit, "mwpm", shard_shots=64, workers=workers
            ) as engine:
                tables.append(engine.collect(300, seed=21))
        np.testing.assert_array_equal(tables[0][0], tables[1][0])
        np.testing.assert_array_equal(tables[0][1], tables[1][1])


class TestMWPMDecomposition:
    """Cluster decomposition must stay exact and batch-invariant."""

    def test_decomposed_agrees_with_whole_syndrome_failures(self, memory_setup):
        _, dem, detectors, observables = memory_setup
        graph = DecodingGraph.from_dem(dem)
        whole = MWPMDecoder(graph, decompose=False).decode_batch(detectors)
        split = MWPMDecoder(graph).decode_batch(detectors)
        whole_failures = int((whole[:, 0] ^ observables[:, 0]).sum())
        split_failures = int((split[:, 0] ^ observables[:, 0]).sum())
        # Exact MWPM either way; degenerate ties may flip single shots.
        assert abs(whole_failures - split_failures) <= 2

    def test_batch_decode_matches_scalar_decode(self, memory_setup):
        _, dem, detectors, _ = memory_setup
        decoder = make_decoder("mwpm", dem)
        batch = decoder.decode_batch(detectors)
        scalar = np.stack([decoder.decode(row) for row in detectors[:100]])
        np.testing.assert_array_equal(scalar, batch[:100])

    def test_cluster_cache_reused(self, memory_setup):
        from repro.core.cache import clear_caches

        _, dem, detectors, _ = memory_setup
        decoder = make_decoder("mwpm", dem)
        # Earlier tests may have left these exact syndromes in the
        # cross-batch syndrome cache, which would satisfy the batch
        # before the cluster layer ever runs; start from a cold cache.
        clear_caches()
        first = decoder.decode_batch(detectors)
        assert len(decoder._cluster_cache) > 0
        again = decoder.decode_batch(detectors)
        np.testing.assert_array_equal(first, again)

    def test_cache_runaway_clear_mid_batch_recovers(self, memory_setup, monkeypatch):
        # A tiny cache limit forces wholesale clears *during* a batch;
        # composition must re-solve dropped clusters, not crash, and the
        # predictions must be unchanged.
        import repro.decoder.mwpm as mwpm_module

        _, dem, detectors, _ = memory_setup
        reference = MWPMDecoder(DecodingGraph.from_dem(dem)).decode_batch(detectors)
        monkeypatch.setattr(mwpm_module, "_CLUSTER_CACHE_LIMIT", 2)
        small_cache = MWPMDecoder(DecodingGraph.from_dem(dem))
        np.testing.assert_array_equal(
            small_cache.decode_batch(detectors), reference
        )
        assert len(small_cache._cluster_cache) <= 3

    def test_decompose_raises_on_unexplainable_syndrome(self):
        graph = DecodingGraph(num_detectors=3, num_observables=1)
        graph.add_mechanism((0, 1), 0.01, frozenset())
        graph.add_mechanism((1, 2), 0.01, frozenset({0}))
        decoder = MWPMDecoder(graph)  # decompose on (default)
        with pytest.raises(ValueError, match="not perfect"):
            decoder.decode(np.array([1, 1, 1], dtype=np.uint8))


class TestPersistentPool:
    def test_pool_survives_across_runs(self, memory_setup):
        circuit, _, _, _ = memory_setup
        with DecodingEngine(
            circuit, "mwpm", shard_shots=128, workers=2
        ) as engine:
            engine.run(256, seed=1)
            pool = engine._pool
            assert pool is not None
            engine.run(256, seed=2)
            assert engine._pool is pool  # reused, not respawned
            engine.run_until(1, max_shots=512, seed=3)
            assert engine._pool is pool
        assert engine._pool is None  # context exit released it

    def test_close_idempotent_and_restartable(self, memory_setup):
        circuit, _, _, _ = memory_setup
        engine = DecodingEngine(circuit, "mwpm", shard_shots=128, workers=2)
        first = engine.run(256, seed=7)
        engine.close()
        engine.close()
        again = engine.run(256, seed=7)  # pool respawns transparently
        assert (first.shots, first.failures) == (again.shots, again.failures)
        engine.close()


@pytest.mark.slow
class TestEngineSlow:
    """Larger-scale consistency runs, excluded from the tier-1 default."""

    def test_low_p_dedup_matches_naive_at_scale(self):
        circuit = memory_circuit(5, 6, 1e-3)
        sim = FrameSimulator(circuit, rng=np.random.default_rng(31))
        dem = sim.detector_error_model()
        decoder = make_decoder("mwpm", dem)
        detectors, _ = sim.sample(4000)
        np.testing.assert_array_equal(
            decoder.decode_batch(detectors),
            decoder.decode_batch(detectors, dedup=False),
        )

    def test_worker_invariance_d5(self):
        circuit = memory_circuit(5, 6, 2e-3)
        outcomes = []
        for workers in (1, 4):
            engine = DecodingEngine(
                circuit, "mwpm", shard_shots=512, workers=workers
            )
            res = engine.run(4096, seed=19)
            outcomes.append((res.shots, res.failures))
        assert outcomes[0] == outcomes[1]
