"""Edge cases of DEM merging and decoding-graph lowering.

Covers ``DetectorErrorModel.merged`` (XOR convolution, zero-probability
drops, symptom separation), ``DecodingGraph.edge_between`` /
``add_mechanism`` parallel-edge handling, and ``from_dem_uniform``.
"""

import math

import pytest

from repro.decoder.graph import BOUNDARY, DecodingGraph
from repro.noise.dem import DetectorErrorModel, ErrorMechanism


def xor_conv(p1, p2):
    return p1 * (1 - p2) + p2 * (1 - p1)


class TestMerged:
    def test_identical_symptoms_xor_convolve(self):
        dem = DetectorErrorModel(
            [ErrorMechanism(0.1, (0, 1), ()), ErrorMechanism(0.2, (0, 1), ())],
            num_detectors=2, num_observables=0,
        )
        merged = dem.merged()
        assert len(merged.mechanisms) == 1
        assert merged.mechanisms[0].probability == pytest.approx(xor_conv(0.1, 0.2))

    def test_differing_observables_stay_separate(self):
        dem = DetectorErrorModel(
            [ErrorMechanism(0.1, (0,), ()), ErrorMechanism(0.2, (0,), (0,))],
            num_detectors=1, num_observables=1,
        )
        assert len(dem.merged().mechanisms) == 2

    def test_zero_probability_mechanisms_dropped(self):
        dem = DetectorErrorModel(
            [ErrorMechanism(0.0, (0,), ()), ErrorMechanism(0.3, (1,), ())],
            num_detectors=2, num_observables=0,
        )
        merged = dem.merged()
        assert [m.detectors for m in merged.mechanisms] == [(1,)]

    def test_three_way_merge_matches_pairwise(self):
        probs = (0.1, 0.2, 0.3)
        dem = DetectorErrorModel(
            [ErrorMechanism(p, (0,), ()) for p in probs],
            num_detectors=1, num_observables=0,
        )
        expected = xor_conv(xor_conv(probs[0], probs[1]), probs[2])
        assert dem.merged().mechanisms[0].probability == pytest.approx(expected)

    def test_empty_dem_merges_to_empty(self):
        dem = DetectorErrorModel([], num_detectors=0, num_observables=0)
        merged = dem.merged()
        assert merged.mechanisms == []
        assert merged.num_detectors == 0

    def test_counts_survive_merging(self):
        dem = DetectorErrorModel(
            [ErrorMechanism(0.1, (0,), (1,))], num_detectors=3,
            num_observables=2,
        )
        merged = dem.merged()
        assert merged.num_detectors == 3
        assert merged.num_observables == 2


class TestEdgeBetween:
    def test_boundary_edge_lookup(self):
        graph = DecodingGraph(2, 0)
        graph.add_mechanism((0,), 0.01, frozenset())
        edge = graph.edge_between(0, BOUNDARY)
        assert edge is not None and edge.probability == 0.01
        assert graph.edge_between(1, BOUNDARY) is None

    def test_pair_edge_is_orientation_independent(self):
        graph = DecodingGraph(2, 0)
        graph.add_mechanism((0, 1), 0.02, frozenset())
        assert graph.edge_between(0, 1) is graph.edge_between(1, 0)

    def test_missing_edge_is_none(self):
        graph = DecodingGraph(3, 0)
        graph.add_mechanism((0, 1), 0.02, frozenset())
        assert graph.edge_between(0, 2) is None


class TestAddMechanism:
    def test_parallel_edges_with_same_observables_merge(self):
        graph = DecodingGraph(2, 1)
        graph.add_mechanism((0, 1), 0.1, frozenset({0}))
        graph.add_mechanism((0, 1), 0.2, frozenset({0}))
        assert len(graph.edges) == 1
        assert graph.edge_between(0, 1).probability == pytest.approx(
            xor_conv(0.1, 0.2)
        )

    def test_conflicting_observables_keep_the_likelier(self):
        graph = DecodingGraph(2, 1)
        graph.add_mechanism((0, 1), 0.1, frozenset())
        graph.add_mechanism((0, 1), 0.3, frozenset({0}))
        edge = graph.edge_between(0, 1)
        assert edge.observables == frozenset({0})
        assert edge.probability == 0.3
        # An unlikelier conflicting mechanism is dropped.
        graph.add_mechanism((0, 1), 0.05, frozenset())
        assert graph.edge_between(0, 1).probability == 0.3

    def test_hyperedge_insert_rejected(self):
        graph = DecodingGraph(3, 0)
        with pytest.raises(ValueError, match="1 or 2 detectors"):
            graph.add_mechanism((0, 1, 2), 0.1, frozenset())

    def test_weight_is_llr_and_railed(self):
        graph = DecodingGraph(1, 0)
        graph.add_mechanism((0,), 0.01, frozenset())
        edge = graph.edge_between(0, BOUNDARY)
        assert edge.weight == pytest.approx(math.log(0.99 / 0.01))
        graph.add_mechanism((0,), 0.49999, frozenset())
        assert graph.edge_between(0, BOUNDARY).weight > 0


class TestFromDem:
    def test_empty_dem_lowers_to_empty_graph(self):
        graph = DecodingGraph.from_dem(
            DetectorErrorModel([], num_detectors=0, num_observables=0)
        )
        assert graph.edges == []

    def test_undetectable_mechanism_is_skipped(self):
        dem = DetectorErrorModel(
            [ErrorMechanism(0.1, (), (0,)), ErrorMechanism(0.2, (0,), ())],
            num_detectors=1, num_observables=1,
        )
        graph = DecodingGraph.from_dem(dem)
        assert len(graph.edges) == 1
        assert graph.edge_between(0, BOUNDARY).probability == 0.2

    def test_from_dem_uniform_pins_probabilities_keeps_topology(self):
        dem = DetectorErrorModel(
            [
                ErrorMechanism(0.01, (0,), ()),
                ErrorMechanism(0.02, (0, 1), (0,)),
                ErrorMechanism(0.03, (1, 2), ()),
            ],
            num_detectors=3, num_observables=1,
        )
        weighted = DecodingGraph.from_dem(dem)
        uniform = DecodingGraph.from_dem_uniform(dem, probability=1e-3)
        assert {e.detectors for e in uniform.edges} == {
            e.detectors for e in weighted.edges
        }
        assert all(e.probability == 1e-3 for e in uniform.edges)
        # Observable masks come from the true DEM, not flattened away.
        assert uniform.edge_between(0, 1).observables == frozenset({0})

    def test_uniform_default_does_not_mutate_weighted_graph(self):
        dem = DetectorErrorModel(
            [ErrorMechanism(0.25, (0,), ())], num_detectors=1,
            num_observables=0,
        )
        weighted = DecodingGraph.from_dem(dem)
        DecodingGraph.from_dem_uniform(dem)
        assert weighted.edge_between(0, BOUNDARY).probability == 0.25
