"""Tests for reversible sim, Cuccaro adders, runways and windowed arithmetic."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arithmetic.cuccaro import AdderSpec, add, cuccaro_adder, registers
from repro.arithmetic.maj_layout import MajBlockLayout
from repro.arithmetic.reversible import Gate, RegisterFile, ReversibleCircuit
from repro.arithmetic.runways import RunwayConfig, minimum_padding
from repro.arithmetic.timing import AdditionTiming
from repro.arithmetic.windowed import WindowedExpConfig, ekera_hastad_exponent_bits
from repro.core.params import PhysicalParams


class TestReversible:
    def test_x_gate(self):
        c = ReversibleCircuit(2).x(0)
        assert c.run([0, 1]) == [1, 1]

    def test_cx(self):
        c = ReversibleCircuit(2).cx(0, 1)
        assert c.run([1, 0]) == [1, 1]
        assert c.run([0, 0]) == [0, 0]

    def test_ccx(self):
        c = ReversibleCircuit(3).ccx(0, 1, 2)
        assert c.run([1, 1, 0]) == [1, 1, 1]
        assert c.run([1, 0, 0]) == [1, 0, 0]

    def test_swap(self):
        c = ReversibleCircuit(2).swap(0, 1)
        assert c.run([1, 0]) == [0, 1]

    def test_inverse_undoes(self):
        c = ReversibleCircuit(3).ccx(0, 1, 2).cx(0, 1).x(2)
        full = ReversibleCircuit(3).extend(c).extend(c.inverse())
        for value in range(8):
            bits = [(value >> i) & 1 for i in range(3)]
            assert full.run(bits) == bits

    def test_repeated_target_rejected(self):
        with pytest.raises(ValueError):
            Gate("CX", (1, 1))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ReversibleCircuit(2).cx(0, 2)

    def test_toffoli_depth_sequential(self):
        c = ReversibleCircuit(3).ccx(0, 1, 2).ccx(0, 1, 2)
        assert c.toffoli_depth() == 2

    def test_toffoli_depth_parallel(self):
        c = ReversibleCircuit(6).ccx(0, 1, 2).ccx(3, 4, 5)
        assert c.toffoli_depth() == 1

    def test_register_file_roundtrip(self):
        regs = RegisterFile({"a": 4, "b": 3})
        state = regs.encode({"a": 9, "b": 5})
        assert regs.decode(state, "a") == 9
        assert regs.decode(state, "b") == 5

    def test_register_overflow_rejected(self):
        regs = RegisterFile({"a": 3})
        with pytest.raises(ValueError):
            regs.encode({"a": 8})


class TestCuccaroAdder:
    @given(st.integers(1, 10), st.data())
    @settings(max_examples=60)
    def test_addition_correct(self, width, data):
        a = data.draw(st.integers(0, 2**width - 1))
        b = data.draw(st.integers(0, 2**width - 1))
        cin = data.draw(st.integers(0, 1))
        total = a + b + cin
        s, cout = add(width, a, b, cin)
        assert s == total % 2**width
        assert cout == total >> width

    def test_preserves_a(self):
        width = 6
        regs = registers(width)
        circuit = cuccaro_adder(width)
        state = circuit.run(regs.encode({"a": 45, "b": 18}))
        assert regs.decode(state, "a") == 45

    def test_toffoli_count_is_2n(self):
        assert cuccaro_adder(8).toffoli_count() == 16
        assert AdderSpec(8).toffoli_count == 16

    def test_toffoli_depth_is_sequential(self):
        assert cuccaro_adder(8).toffoli_depth() == AdderSpec(8).toffoli_depth

    def test_width_zero_rejected(self):
        with pytest.raises(ValueError):
            AdderSpec(0)


class TestRunways:
    def test_paper_configuration(self):
        rw = RunwayConfig(2048, 96, 43)
        assert rw.num_segments == 22
        assert rw.num_runways == 21
        assert rw.padded_width == 2048 + 21 * 43
        assert rw.toffoli_depth == 2 * (96 + 43)

    def test_single_segment_no_runways(self):
        rw = RunwayConfig(64, 128, 43)
        assert rw.num_segments == 1
        assert rw.num_runways == 0
        assert rw.toffoli_depth == 2 * 64

    def test_runway_error_decays_with_padding(self):
        thin = RunwayConfig(2048, 96, 10)
        thick = RunwayConfig(2048, 96, 43)
        assert thick.runway_error_per_addition() < thin.runway_error_per_addition()

    def test_minimum_padding_meets_budget(self):
        pad = minimum_padding(1.05e6, 0.01, 21)
        assert 21 * 1.05e6 * 2.0**-pad <= 0.01
        assert 21 * 1.05e6 * 2.0 ** (-(pad - 1)) > 0.01

    def test_minimum_padding_paper_scale(self):
        # Paper's r_pad = 43 corresponds to a harsh (~1e-6) runway budget.
        assert minimum_padding(1.05e6, 2e-6, 21) in range(40, 48)


class TestWindowed:
    def paper_config(self):
        return WindowedExpConfig(
            2048, ekera_hastad_exponent_bits(2048), 3, 4, RunwayConfig(2048, 96, 43)
        )

    def test_lookup_additions_match_paper(self):
        # Paper Sec. IV.2: ~1.07e6 lookup-additions.
        cfg = self.paper_config()
        assert cfg.num_lookup_additions == pytest.approx(1.07e6, rel=0.05)

    def test_total_ccz_matches_paper(self):
        # Paper Sec. III.6: ~3e9 CCZ gates.
        cfg = self.paper_config()
        assert cfg.total_ccz == pytest.approx(3e9, rel=0.15)

    def test_lookup_entries(self):
        assert self.paper_config().lookup_entries == 128

    def test_exponent_length(self):
        assert ekera_hastad_exponent_bits(2048) == 3072

    def test_larger_windows_fewer_lookups(self):
        small = self.paper_config()
        big = WindowedExpConfig(
            2048, 3072, 5, 5, RunwayConfig(2048, 96, 43)
        )
        assert big.num_lookup_additions < small.num_lookup_additions
        assert big.lookup_entries > small.lookup_entries


class TestMajAndTiming:
    def test_max_move_bounded_by_sqrt2_d(self):
        layout = MajBlockLayout(27)
        assert layout.max_move_sites() <= math.sqrt(2) * 27 + 1e-9
        assert layout.max_move_is_sqrt2_d()

    def test_footprint_3x2(self):
        assert MajBlockLayout(27).footprint_tiles == (3, 2)

    def test_schedule_is_aod_valid(self):
        # Constructing the schedule validates every batch move.
        schedule = MajBlockLayout(11).schedule()
        assert schedule.move_count() > 0

    def test_addition_time_matches_paper(self):
        # Paper Sec. IV.2: each addition takes 0.28 s.
        timing = AdditionTiming(RunwayConfig(2048, 96, 43), 27)
        assert timing.duration == pytest.approx(0.28, abs=0.02)

    def test_ccz_consumption_rate(self):
        timing = AdditionTiming(RunwayConfig(2048, 96, 43), 27)
        assert timing.ccz_per_step == 22
        assert timing.ccz_consumption_rate == pytest.approx(22 / 1e-3, rel=0.05)

    def test_step_time_reaction_limited(self):
        timing = AdditionTiming(RunwayConfig(2048, 96, 43), 27, PhysicalParams())
        assert timing.step_time >= PhysicalParams().reaction_time
