"""Tests for QROM, GHZ fan-out and lookup timing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import PhysicalParams
from repro.lookup.ghz_fanout import (
    FanoutLayout,
    fanout_circuit,
    fanout_wires,
    ghz_fixup,
    ghz_prep_circuit,
    optimal_grid_spacing,
)
from repro.lookup.qrom import QROMSpec, lookup, qrom_circuit
from repro.lookup.timing import LookupTiming, optimal_pipeline_copies
from repro.sim.tableau import TableauSimulator

PHYS = PhysicalParams()


class TestQROM:
    @given(st.integers(1, 4), st.data())
    @settings(max_examples=25)
    def test_lookup_matches_table(self, address_bits, data):
        entries = 2**address_bits
        table = data.draw(
            st.lists(st.integers(0, 31), min_size=entries, max_size=entries)
        )
        address = data.draw(st.integers(0, entries - 1))
        assert lookup(address_bits, table, 5, address) == table[address]

    def test_partial_table_pads_with_zero(self):
        assert lookup(3, [7, 7, 7], 3, 5) == 0

    def test_toffoli_count_formula(self):
        # 2 CCX per internal tree node = 2 (2^w - 2); magic cost is half.
        for w in (2, 3, 4, 5):
            circuit = qrom_circuit(w, [0] * 2**w, 4)
            assert circuit.toffoli_count() == 2 * (2**w - 2)
            assert QROMSpec(w, 4).toffoli_count == 2**w - 2

    def test_oversized_table_rejected(self):
        with pytest.raises(ValueError):
            qrom_circuit(2, [0] * 5, 4)

    def test_entry_overflow_rejected(self):
        with pytest.raises(ValueError):
            qrom_circuit(2, [16], 4)

    def test_average_fanout(self):
        spec = QROMSpec(2, 8)
        assert spec.average_cnot_fanout([0b1111, 0b0001, 0, 0]) == pytest.approx(1.25)


class TestGHZFanout:
    def test_prep_circuit_produces_ghz_under_postselection(self):
        circuit = ghz_prep_circuit(4)
        forced = {i: 0 for i in range(circuit.num_measurements)}
        sim = TableauSimulator(circuit.num_qubits, rng=np.random.default_rng(0))
        sim.run(circuit, forced_measurements=forced)
        n = 4
        x_mask = np.zeros(circuit.num_qubits, np.uint8)
        x_mask[:n] = 1
        assert sim.expectation(x_mask, np.zeros_like(x_mask)) == 0
        for a in range(n - 1):
            z_mask = np.zeros(circuit.num_qubits, np.uint8)
            z_mask[a] = z_mask[a + 1] = 1
            assert sim.expectation(np.zeros_like(z_mask), z_mask) == 0

    def test_fixup_prefix_parity(self):
        assert ghz_fixup([1, 0, 0], 4) == [1, 2, 3]
        assert ghz_fixup([0, 1, 0], 4) == [2, 3]
        assert ghz_fixup([1, 1, 0], 4) == [1]
        assert ghz_fixup([0, 0, 0], 4) == []

    @pytest.mark.parametrize("control_value", [0, 1])
    def test_fanout_copies_control(self, control_value):
        n = 5
        wires = fanout_wires(n)
        circuit = fanout_circuit(n)
        forced = {i: 0 for i in range(circuit.num_measurements)}
        sim = TableauSimulator(circuit.num_qubits, rng=np.random.default_rng(1))
        if control_value:
            sim.x_gate(wires.control)
        sim.run(circuit, forced_measurements=forced)
        for t in wires.targets:
            assert sim.measure(t) == control_value

    def test_fanout_preserves_superposition(self):
        # Control in |+>: the gadget yields a GHZ over control + targets.
        n = 3
        wires = fanout_wires(n)
        circuit = fanout_circuit(n)
        forced = {i: 0 for i in range(circuit.num_measurements)}
        sim = TableauSimulator(circuit.num_qubits, rng=np.random.default_rng(2))
        sim.h(wires.control)
        sim.run(circuit, forced_measurements=forced)
        members = [wires.control] + list(wires.targets)
        x_mask = np.zeros(circuit.num_qubits, np.uint8)
        for q in members:
            x_mask[q] = 1
        assert sim.expectation(x_mask, np.zeros_like(x_mask)) == 0

    def test_small_fanout_rejected(self):
        with pytest.raises(ValueError):
            fanout_circuit(1)


class TestFanoutLayout:
    def test_qubit_counts(self):
        layout = FanoutLayout(2048, 2, 27)
        assert layout.num_ghz_qubits == 1024
        assert layout.num_helper_qubits == 1023

    def test_move_bound_2d_at_spacing_2(self):
        # Paper Fig. 10(c): moves of a small constant distance, 2 d l.
        layout = FanoutLayout(2048, 2, 27)
        assert layout.max_move_sites() == pytest.approx(2 * 27)

    def test_spacing_tradeoff(self):
        tight = FanoutLayout(1024, 1, 27)
        loose = FanoutLayout(1024, 4, 27)
        assert loose.logical_qubits < tight.logical_qubits
        assert loose.max_move_sites() > tight.max_move_sites()

    def test_optimal_spacing_small(self):
        best = optimal_grid_spacing(2048, 27, PHYS, 1e-3)
        assert best in (1, 2, 3, 4)


class TestLookupTiming:
    def test_duration_matches_paper(self):
        timing = LookupTiming(QROMSpec(7, 2048), 27)
        assert timing.duration == pytest.approx(0.17, abs=0.03)

    def test_reaction_limited_steps(self):
        timing = LookupTiming(QROMSpec(7, 2048), 27)
        assert timing.step_time >= PHYS.reaction_time

    def test_smaller_table_faster(self):
        small = LookupTiming(QROMSpec(5, 2048), 27)
        large = LookupTiming(QROMSpec(8, 2048), 27)
        assert small.duration < large.duration

    def test_single_pipeline_copy_optimal(self):
        # Paper: one copy per pipeline stage minimizes space-time volume.
        timing = LookupTiming(QROMSpec(7, 2048), 27)
        assert optimal_pipeline_copies(timing) == 1

    def test_ccz_rate_about_reaction_rate(self):
        timing = LookupTiming(QROMSpec(7, 2048), 27)
        assert 0.5 / PHYS.reaction_time < timing.ccz_consumption_rate <= 1.0 / PHYS.reaction_time
