"""Tests for atom-array geometry, AOD constraints, scheduling and zones."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.atoms.aod import AODViolation, BatchMove, Move, interleave_patches, shift_batch
from repro.atoms.geometry import Region, euclidean_sites, interleaved_distance, patch_region
from repro.atoms.scheduler import MoveSchedule, ScheduleStep, round_trip
from repro.atoms.zones import ZonePlan, ZoneSpec, factoring_zone_plan
from repro.core.params import PhysicalParams

PHYS = PhysicalParams()


class TestGeometry:
    def test_euclidean(self):
        assert euclidean_sites((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_region_sites(self):
        r = Region(1, 2, 2, 3)
        assert r.num_sites == 6
        assert len(list(r.sites())) == 6
        assert r.contains((2, 4))
        assert not r.contains((3, 2))

    def test_region_overlap(self):
        a = Region(0, 0, 3, 3)
        assert a.overlaps(Region(2, 2, 3, 3))
        assert not a.overlaps(Region(3, 0, 1, 3))

    def test_region_shift(self):
        assert Region(0, 0, 2, 2).shifted(5, 1).corner == (5, 1)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Region(0, 0, 0, 2)

    def test_patch_region(self):
        assert patch_region((0, 0), 27).num_sites == 27 * 27

    def test_interleave_distance_is_d(self):
        assert interleaved_distance(27) == 27.0


class TestAODConstraints:
    def test_rigid_shift_valid(self):
        batch = shift_batch([(0, 0), (0, 1), (1, 0)], 5, 5)
        batch.validate()  # must not raise

    def test_duplicate_source_rejected(self):
        batch = BatchMove([Move((0, 0), (1, 0)), Move((0, 0), (2, 0))])
        with pytest.raises(AODViolation):
            batch.validate()

    def test_merge_rejected(self):
        batch = BatchMove([Move((0, 0), (1, 0)), Move((2, 0), (1, 1))])
        with pytest.raises(AODViolation):
            batch.validate()

    def test_row_crossing_rejected(self):
        batch = BatchMove([Move((0, 0), (3, 0)), Move((2, 1), (1, 1))])
        with pytest.raises(AODViolation):
            batch.validate()

    def test_inconsistent_row_shift_rejected(self):
        batch = BatchMove([Move((0, 0), (1, 0)), Move((0, 5), (2, 5))])
        with pytest.raises(AODViolation):
            batch.validate()

    def test_different_rows_may_shift_differently(self):
        batch = BatchMove([Move((0, 0), (1, 0)), Move((5, 0), (7, 0))])
        batch.validate()

    # -- negative cases guarding the durations MovementAware consumes ------

    def test_col_crossing_rejected(self):
        # Column tones 0 and 2 would pass each other mid-move.
        batch = BatchMove([Move((0, 0), (0, 3)), Move((1, 2), (1, 1))])
        with pytest.raises(AODViolation):
            batch.validate()

    def test_col_merge_rejected(self):
        # Column tones 0 and 2 would land on the same column.
        batch = BatchMove([Move((0, 0), (0, 2)), Move((1, 2), (1, 2))])
        with pytest.raises(AODViolation):
            batch.validate()

    def test_inconsistent_col_shift_rejected(self):
        # One column tone cannot displace two atoms by different amounts:
        # such a grab has no product-grid realization.
        batch = BatchMove([Move((0, 0), (0, 1)), Move((5, 0), (5, 3))])
        with pytest.raises(AODViolation):
            batch.validate()

    def test_diagonal_non_product_grab_rejected(self):
        # A diagonal pair whose columns collapse onto one landing column:
        # row shifts are consistent, but the implied column-tone motion is
        # not a product grid (columns 0 and 1 would merge).
        batch = BatchMove([Move((0, 0), (2, 2)), Move((1, 1), (3, 2))])
        with pytest.raises(AODViolation):
            batch.validate()

    def test_row_and_col_violations_reported_independently(self):
        # Same-row atoms with different row displacements: the row tone
        # would have to split.
        batch = BatchMove([Move((2, 0), (3, 0)), Move((2, 4), (5, 4))])
        with pytest.raises(AODViolation, match="row 2"):
            batch.validate()

    def test_duration_uses_longest_move(self):
        batch = BatchMove([Move((0, 0), (0, 1)), Move((5, 3), (5, 12))])
        expected = BatchMove([Move((5, 3), (5, 12))]).duration(PHYS)
        assert batch.duration(PHYS) == pytest.approx(expected)

    def test_empty_batch_instant(self):
        assert BatchMove([]).duration(PHYS) == 0.0

    def test_interleave_patches_valid_and_bounded(self):
        batch = interleave_patches((0, 0), (0, 5), 5)
        batch.validate()
        assert batch.max_length_sites == pytest.approx(5.0)

    @given(st.integers(-20, 20), st.integers(-20, 20))
    def test_rigid_shifts_always_valid(self, dr, dc):
        sources = [(r, c) for r in range(3) for c in range(3)]
        shift_batch(sources, dr, dc).validate()


class TestMoveSchedule:
    def test_round_trip_duration(self):
        schedule = round_trip("gate", [(0, 0), (0, 1)], 0, 3)
        one_way = BatchMove([Move((0, 0), (0, 3))]).duration(PHYS)
        expected = 2 * one_way + PHYS.gate_time
        assert schedule.duration(PHYS) == pytest.approx(expected)

    def test_max_move_sites(self):
        schedule = round_trip("gate", [(0, 0)], 3, 4)
        assert schedule.max_move_sites == pytest.approx(5.0)

    def test_measurement_step(self):
        schedule = MoveSchedule()
        schedule.add_measurement("readout", count=10)
        assert schedule.duration(PHYS) == pytest.approx(PHYS.measure_time)

    def test_gate_only_step(self):
        schedule = MoveSchedule()
        schedule.add_gates("pulse", 3)
        assert schedule.duration(PHYS) == pytest.approx(3 * PHYS.gate_time)

    def test_invalid_batch_rejected_on_add(self):
        schedule = MoveSchedule()
        bad = BatchMove([Move((0, 0), (1, 0)), Move((0, 1), (2, 1))])
        with pytest.raises(AODViolation):
            schedule.add_move("bad", bad)

    def test_move_count(self):
        schedule = round_trip("gate", [(0, 0)], 1, 0)
        assert schedule.move_count() == 2


class TestZones:
    def test_storage_denser_than_compute(self):
        storage = ZoneSpec("s", "storage", 10, 27)
        compute = ZoneSpec("c", "compute", 10, 27)
        assert storage.num_atoms < compute.num_atoms
        assert storage.atoms_per_logical() == 27 * 27
        assert compute.atoms_per_logical() == 2 * 27 * 27 - 1

    def test_plan_totals(self):
        plan = factoring_zone_plan(100, 10, 4, 12, 27)
        roles = plan.atoms_by_role()
        assert roles["storage"] == 100 * 27 * 27
        assert plan.total_atoms == sum(roles.values())

    def test_duplicate_zone_rejected(self):
        plan = ZonePlan()
        plan.add(ZoneSpec("a", "storage", 1, 27))
        with pytest.raises(ValueError):
            plan.add(ZoneSpec("a", "compute", 1, 27))

    def test_zone_lookup(self):
        plan = factoring_zone_plan(1, 1, 1, 1, 27)
        assert plan.zone("registers").role == "storage"
        with pytest.raises(KeyError):
            plan.zone("missing")

    def test_layout_bands_stack_without_overlap(self):
        plan = factoring_zone_plan(100, 10, 4, 12, 27)
        regions = list(plan.layout(sites_per_row=1000).values())
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                assert not a.overlaps(b)

    def test_layout_capacity_sufficient(self):
        plan = factoring_zone_plan(100, 10, 4, 12, 27)
        for name, region in plan.layout(sites_per_row=1000).items():
            assert region.num_sites >= plan.zone(name).num_atoms
