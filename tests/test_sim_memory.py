"""Tests for memory-experiment builders: determinism and structure."""

import numpy as np
import pytest

from repro.sim.frame import FrameSimulator
from repro.sim.memory import (
    MemoryExperimentBuilder,
    memory_circuit,
    transversal_cnot_circuit,
    transversal_cnot_experiment,
)
from repro.sim.tableau import TableauSimulator


def detector_violations(circuit, seed: int) -> int:
    """Run the noiseless circuit on the tableau sim; count non-zero detectors."""
    sim = TableauSimulator(circuit.num_qubits, rng=np.random.default_rng(seed))
    sim.run(circuit)
    violations = 0
    for op in circuit.operations:
        if op.name == "DETECTOR":
            value = 0
            for rec in op.targets:
                value ^= sim.record[rec]
            violations += value
    return violations


class TestMemoryCircuit:
    @pytest.mark.parametrize("basis", ["Z", "X"])
    def test_detectors_deterministic(self, basis):
        circuit = memory_circuit(3, 3, 0.0, basis)
        for seed in (0, 1, 2):
            assert detector_violations(circuit, seed) == 0

    def test_detector_count(self):
        # d=3: round 1 has 4 Z detectors; rounds 2..r have 8; final has 4.
        rounds = 4
        circuit = memory_circuit(3, rounds, 0.0)
        expected = 4 + 8 * (rounds - 1) + 4
        assert circuit.num_detectors == expected

    def test_single_observable(self):
        assert memory_circuit(3, 2, 0.0).num_observables == 1

    def test_noiseless_sampling_never_fails(self):
        circuit = memory_circuit(3, 3, 0.0)
        dets, obs = FrameSimulator(circuit).sample(32)
        assert not dets.any()
        assert not obs.any()

    def test_noise_produces_defects(self):
        circuit = memory_circuit(3, 3, 0.01)
        dets, _ = FrameSimulator(circuit, rng=np.random.default_rng(0)).sample(64)
        assert dets.any()

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            memory_circuit(3, 0, 0.0)

    def test_invalid_basis(self):
        with pytest.raises(ValueError):
            MemoryExperimentBuilder(3, basis="Y")

    def test_qubit_count(self):
        circuit = memory_circuit(5, 2, 0.0)
        assert circuit.num_qubits == 2 * 25 - 1


class TestTransversalCnotCircuit:
    @pytest.mark.parametrize("cnots", [[1], [1, 2], [1, 2, 3]])
    def test_detectors_deterministic(self, cnots):
        circuit = transversal_cnot_circuit(3, 4, 0.0, cnots)
        for seed in (0, 1):
            assert detector_violations(circuit, seed) == 0

    def test_detectors_deterministic_alternating(self):
        builder = transversal_cnot_experiment(
            3, 5, 0.0, [1, 2, 3, 4], alternate_direction=True
        )
        assert detector_violations(builder.circuit, 3) == 0

    def test_detectors_deterministic_x_basis(self):
        circuit = transversal_cnot_circuit(3, 4, 0.0, [1, 2], basis="X")
        assert detector_violations(circuit, 1) == 0

    def test_two_observables(self):
        circuit = transversal_cnot_circuit(3, 3, 0.0, [1])
        assert circuit.num_observables == 2

    def test_metadata_matches_detectors(self):
        builder = transversal_cnot_experiment(3, 4, 1e-3, [1, 2])
        assert len(builder.detector_meta) == builder.circuit.num_detectors
        patches = {meta[0] for meta in builder.detector_meta}
        assert patches == {0, 1}

    def test_cnot_between_same_patch_rejected(self):
        builder = MemoryExperimentBuilder(3, num_patches=2)
        with pytest.raises(ValueError):
            builder.transversal_cnot(0, 0)

    def test_observables_are_own_patch_rows(self):
        # Each observable covers exactly one patch's weight-d logical row.
        circuit = transversal_cnot_circuit(3, 3, 0.0, [1])
        obs_ops = [op for op in circuit.operations if op.name == "OBSERVABLE_INCLUDE"]
        sizes = sorted(len(op.targets) for op in obs_ops)
        assert sizes == [3, 3]

    def test_observables_deterministic_noiseless(self):
        circuit = transversal_cnot_circuit(3, 4, 0.0, [1, 2])
        dets, obs = FrameSimulator(circuit).sample(8)
        assert not obs.any()

    def test_logical_state_transfer(self):
        # Functional check: X on patch 0 then CX(0->1) flips patch 1's
        # logical Z readout; verified via the observable with an injected
        # deterministic error (hence strict=False: deliberate channel in
        # the clean circuit).
        builder = MemoryExperimentBuilder(
            3, num_patches=2, basis="Z", p=0.0, strict=False
        )
        builder.se_round()
        # Apply logical X on patch 0 (column of physical X).
        code = builder.code
        column = [builder.patches[0].data(q) for q in code.logical_x_support()]
        builder.circuit.x_error(column, 1.0)
        builder.transversal_cnot(0, 1)
        builder.se_round()
        circuit = builder.finalize()
        dets, obs = FrameSimulator(circuit).sample(16)
        # The injected logical X flips both observables: patch 0's directly,
        # patch 1's because CX copies the logical X.
        assert obs[:, 0].all()
        assert obs[:, 1].all()
