"""Span/tracing tests: the no-op contract, Chrome trace export, tree render.

The disabled path is the one every production run takes, so its contract
is load-bearing: ``span()`` must return the *shared* null object (no
allocation, no timestamps) and ``traced`` functions must call straight
through.  The enabled path must emit Chrome trace-event JSON that
Perfetto accepts: complete ("X") events with microsecond ts/dur and a
depth arg that reconstructs nesting.
"""

import json

import pytest

from repro.obs import (
    clear_trace,
    disable_tracing,
    enable_tracing,
    render_trace_tree,
    span,
    trace_events,
    traced,
    tracing_enabled,
    write_trace,
)


@pytest.fixture
def tracing():
    """Enable tracing for the test; always restore the disabled default."""
    enable_tracing()
    try:
        yield
    finally:
        disable_tracing()
        clear_trace()


@pytest.fixture(autouse=True)
def _ensure_disabled_after():
    yield
    disable_tracing()
    clear_trace()


# -- disabled: the no-op contract -----------------------------------------------


def test_disabled_span_is_shared_noop():
    assert not tracing_enabled()
    assert span("a") is span("b", key="value")
    with span("a") as s:
        s.set(extra=1)  # accepted and dropped
    assert trace_events() == []


def test_disabled_traced_calls_through():
    @traced
    def add(a, b):
        return a + b

    assert add(2, 3) == 5
    assert trace_events() == []


# -- enabled: event structure ---------------------------------------------------


def test_span_records_complete_event(tracing):
    with span("work", shots=100):
        pass
    (event,) = trace_events()
    assert event["name"] == "work"
    assert event["ph"] == "X"
    assert event["dur"] >= 0
    assert event["args"]["shots"] == 100
    assert event["args"]["depth"] == 0
    assert isinstance(event["pid"], int) and isinstance(event["tid"], int)


def test_nested_spans_track_depth(tracing):
    with span("outer"):
        with span("inner"):
            pass
        with span("inner"):
            pass
    by_name = {}
    for event in trace_events():
        by_name.setdefault(event["name"], []).append(event["args"]["depth"])
    assert by_name == {"inner": [1, 1], "outer": [0]}


def test_span_set_updates_args(tracing):
    with span("work") as s:
        s.set(result="ok")
    (event,) = trace_events()
    assert event["args"]["result"] == "ok"


def test_traced_decorator_named_and_bare(tracing):
    @traced("custom.name")
    def f():
        return 1

    @traced
    def g():
        return 2

    assert f() == 1 and g() == 2
    names = [event["name"] for event in trace_events()]
    assert "custom.name" in names
    assert any(name.endswith("g") for name in names)


def test_write_trace_json(tracing, tmp_path):
    with span("outer"):
        with span("inner"):
            pass
    path = tmp_path / "trace.json"
    written = write_trace(str(path))
    assert written == str(path)
    payload = json.loads(path.read_text())
    assert payload["displayTimeUnit"] == "ms"
    assert {e["name"] for e in payload["traceEvents"]} == {"outer", "inner"}
    for event in payload["traceEvents"]:
        assert event["ph"] == "X"
        assert set(event) >= {"name", "ts", "dur", "pid", "tid", "args"}


def test_write_trace_without_path_is_noop():
    # Not armed with a path and none given: nothing to write.
    assert write_trace() is None


def test_enable_tracing_clears_previous_events(tracing):
    with span("old"):
        pass
    enable_tracing()
    assert trace_events() == []


# -- text tree ------------------------------------------------------------------


def test_render_trace_tree_aggregates_siblings(tracing):
    with span("run"):
        for _ in range(3):
            with span("shard"):
                pass
    tree = render_trace_tree()
    assert "run" in tree
    assert "shard  x3" in tree
    # Children indent under their parent.
    run_line = next(line for line in tree.splitlines() if "run" in line)
    shard_line = next(line for line in tree.splitlines() if "shard" in line)
    assert len(shard_line) - len(shard_line.lstrip()) > len(run_line) - len(
        run_line.lstrip()
    )


def test_render_trace_tree_empty():
    assert render_trace_tree() == "(no spans recorded)"
