"""Tests for the tableau simulator and the Pauli-frame sampler."""

import numpy as np
import pytest

from repro.sim.circuit import Circuit
from repro.sim.frame import FrameSimulator
from repro.sim.statevector import StateVector
from repro.sim.tableau import TableauSimulator


class TestTableau:
    def test_deterministic_zero(self):
        sim = TableauSimulator(1)
        assert sim.measure(0) == 0

    def test_x_flips_outcome(self):
        sim = TableauSimulator(1)
        sim.x_gate(0)
        assert sim.measure(0) == 1

    def test_plus_state_random_then_repeatable(self):
        sim = TableauSimulator(1, rng=np.random.default_rng(0))
        sim.h(0)
        first = sim.measure(0)
        assert sim.measure(0) == first  # collapsed

    def test_bell_correlations(self):
        for seed in range(5):
            sim = TableauSimulator(2, rng=np.random.default_rng(seed))
            sim.h(0)
            sim.cx(0, 1)
            assert sim.measure(0) == sim.measure(1)

    def test_ghz_parity(self):
        # X-basis parity of a GHZ state is +1: XOR of MX outcomes is 0.
        for seed in range(5):
            sim = TableauSimulator(3, rng=np.random.default_rng(seed))
            sim.h(0)
            sim.cx(0, 1)
            sim.cx(1, 2)
            outcomes = [sim.measure_x(q) for q in range(3)]
            assert sum(outcomes) % 2 == 0

    def test_s_gate_via_y_basis(self):
        # S|+> = |+i>, measuring X is then random, but (S)^2|+> = Z|+> = |->.
        sim = TableauSimulator(1)
        sim.h(0)
        sim.s(0)
        sim.s(0)
        assert sim.measure_x(0) == 1

    def test_expectation_of_stabilizers(self):
        sim = TableauSimulator(2)
        sim.h(0)
        sim.cx(0, 1)
        # Bell state: XX and ZZ stabilizers, XZ not an eigen-operator.
        assert sim.expectation(np.array([1, 1]), np.array([0, 0])) == 0
        assert sim.expectation(np.array([0, 0]), np.array([1, 1])) == 0
        assert sim.expectation(np.array([1, 0]), np.array([0, 1])) is None

    def test_expectation_sign(self):
        sim = TableauSimulator(1)
        sim.x_gate(0)
        assert sim.expectation(np.array([0]), np.array([1])) == 1  # <Z> = -1

    def test_forced_deterministic_mismatch_raises(self):
        sim = TableauSimulator(1)
        with pytest.raises(ValueError):
            sim.measure(0, forced=1)

    def test_reset_after_entangling(self):
        sim = TableauSimulator(2, rng=np.random.default_rng(1))
        sim.h(0)
        sim.cx(0, 1)
        sim.reset(0)
        assert sim.measure(0) == 0

    def test_cz_matches_statevector(self):
        circuit = Circuit().h(0).h(1).cz(0, 1).h(1).measure(0, 1)
        for seed in range(4):
            tab = TableauSimulator(2, rng=np.random.default_rng(seed))
            tab.run(circuit)
            # CZ sandwiched in H on target = CX: outcomes must correlate.
            assert tab.record[0] == tab.record[1]

    def test_random_clifford_agreement_with_statevector(self):
        # Cross-check measurement distributions on a random Clifford circuit.
        rng = np.random.default_rng(7)
        circuit = Circuit()
        for _ in range(30):
            kind = rng.integers(0, 4)
            if kind == 0:
                circuit.h(int(rng.integers(0, 4)))
            elif kind == 1:
                circuit.s(int(rng.integers(0, 4)))
            elif kind == 2:
                a, b = rng.choice(4, size=2, replace=False)
                circuit.cx(int(a), int(b))
            else:
                a, b = rng.choice(4, size=2, replace=False)
                circuit.cz(int(a), int(b))
        circuit.measure(0, 1, 2, 3)
        tab_counts = np.zeros(16)
        sv_counts = np.zeros(16)
        shots = 300
        for seed in range(shots):
            tab = TableauSimulator(4, rng=np.random.default_rng(seed))
            tab.run(circuit)
            tab_counts[int("".join(map(str, tab.record)), 2)] += 1
            sv = StateVector(4, rng=np.random.default_rng(seed + 10_000))
            sv.run(circuit)
            sv_counts[int("".join(map(str, sv.record)), 2)] += 1
        # Same support and similar frequencies.
        assert set(np.flatnonzero(tab_counts)) == set(np.flatnonzero(sv_counts))
        for idx in np.flatnonzero(tab_counts):
            assert abs(tab_counts[idx] - sv_counts[idx]) / shots < 0.15


class TestFrameSimulator:
    def test_no_noise_no_flips(self):
        circuit = Circuit().h(0).cx(0, 1).measure(0, 1).detector([0, 1])
        dets, _ = FrameSimulator(circuit).sample(64)
        assert not dets.any()

    def test_certain_x_error_flips_measurement(self):
        circuit = Circuit().x_error([0], 1.0).measure(0).detector([0])
        dets, _ = FrameSimulator(circuit).sample(16)
        assert dets.all()

    def test_z_error_invisible_to_z_measurement(self):
        circuit = Circuit().z_error([0], 1.0).measure(0).detector([0])
        dets, _ = FrameSimulator(circuit).sample(16)
        assert not dets.any()

    def test_z_error_flips_x_measurement(self):
        circuit = Circuit().z_error([0], 1.0).measure_x(0).detector([0])
        dets, _ = FrameSimulator(circuit).sample(16)
        assert dets.all()

    def test_error_propagates_through_cx(self):
        # X on control spreads to target.
        circuit = (
            Circuit().x_error([0], 1.0).cx(0, 1).measure(1).detector([0])
        )
        dets, _ = FrameSimulator(circuit).sample(8)
        assert dets.all()

    def test_reset_clears_frame(self):
        circuit = Circuit().x_error([0], 1.0).reset(0).measure(0).detector([0])
        dets, _ = FrameSimulator(circuit).sample(8)
        assert not dets.any()

    def test_observable_tracking(self):
        circuit = Circuit().x_error([0], 1.0).measure(0).observable_include(0, [0])
        _, obs = FrameSimulator(circuit).sample(8)
        assert obs.all()

    def test_sampled_rate_matches_probability(self):
        circuit = Circuit().x_error([0], 0.3).measure(0).detector([0])
        dets, _ = FrameSimulator(circuit, rng=np.random.default_rng(5)).sample(20000)
        assert abs(dets.mean() - 0.3) < 0.02

    def test_depolarize1_marginals(self):
        # X-flip marginal of depolarize(p) is 2p/3.
        circuit = Circuit().depolarize1([0], 0.3).measure(0).detector([0])
        dets, _ = FrameSimulator(circuit, rng=np.random.default_rng(6)).sample(20000)
        assert abs(dets.mean() - 0.2) < 0.02

    def test_dem_mechanism_of_simple_circuit(self):
        circuit = Circuit().x_error([0], 0.25).measure(0).detector([0]).observable_include(0, [0])
        dem = FrameSimulator(circuit).detector_error_model()
        assert len(dem.mechanisms) == 1
        mech = dem.mechanisms[0]
        assert mech.detectors == (0,)
        assert mech.observables == (0,)
        assert mech.probability == pytest.approx(0.25)

    def test_dem_merges_identical_mechanisms(self):
        circuit = (
            Circuit()
            .x_error([0], 0.1)
            .x_error([0], 0.1)
            .measure(0)
            .detector([0])
        )
        dem = FrameSimulator(circuit).detector_error_model()
        assert len(dem.mechanisms) == 1
        # 0.1*(1-0.1)+0.1*(1-0.1) = 0.18
        assert dem.mechanisms[0].probability == pytest.approx(0.18)

    def test_dem_depolarize2_splits_into_distinct_symptoms(self):
        circuit = (
            Circuit().depolarize2([0, 1], 0.15).measure(0, 1).detector([0]).detector([1])
        )
        dem = FrameSimulator(circuit).detector_error_model()
        symptoms = {m.detectors for m in dem.mechanisms}
        assert symptoms == {(0,), (1,), (0, 1)}
