"""Service-layer tests: store fidelity, job coalescing, HTTP bit-identity.

The acceptance contract: ``GET /estimate?scenario=<s>`` must be
byte-identical to ``python -m repro <s> --json`` for every registered
scenario, N concurrent identical requests must cost exactly one
``build()``, and store round-trips must preserve the golden numerics.
"""

import json
import threading
import time
from pathlib import Path

import pytest

import repro.core.cache as cache
from repro.__main__ import main
from repro.core.cache import (
    caching_disabled,
    clear_caches,
    code_version,
    memoized,
)
from repro.estimator import registry
from repro.estimator.registry import ScenarioResult, run_scenario
from repro.estimator.serialize import (
    dumps_results,
    finite,
    parse_override_value,
)
from repro.obs import parse_prometheus
from repro.service.client import ServiceError, local_service
from repro.service.jobs import JobEngine, JobError
from repro.service.store import (
    ResultStore,
    canonical_params,
    result_key,
    run_with_store,
)

GOLDEN = Path(__file__).parent / "golden"
SCENARIOS = sorted(registry.available_scenarios())


@pytest.fixture
def probe():
    """A registered test scenario counting its build() calls."""
    state = {"calls": 0, "lock": threading.Lock()}

    def build(jobs=1, delay=0.05, x=1):
        with state["lock"]:
            state["calls"] += 1
        time.sleep(delay)
        return ScenarioResult(
            scenario="svc_probe",
            records=({"x": x, "value": 2 * x},),
            metadata={"delay": delay},
        )

    registry.register_scenario(registry.Scenario(
        name="svc_probe",
        description="service-test probe",
        build=build,
        render=lambda r: f"x={r.records[0]['x']}",
        in_all=False,
    ))
    yield state
    registry._REGISTRY.pop("svc_probe", None)


@pytest.fixture
def failing():
    def build(jobs=1):
        raise RuntimeError("intentional probe failure")

    registry.register_scenario(registry.Scenario(
        name="svc_fail",
        description="always fails",
        build=build,
        render=lambda r: "",
        in_all=False,
    ))
    yield
    registry._REGISTRY.pop("svc_fail", None)


# -- serialization -------------------------------------------------------------


class TestSerialize:
    def test_finite_nulls_nonfinite_only(self):
        data = {"a": float("inf"), "b": [float("nan"), 1.5], "c": "x"}
        assert finite(data) == {"a": None, "b": [None, 1.5], "c": "x"}

    def test_parse_override_value(self):
        assert parse_override_value("1e-11") == 1e-11
        assert parse_override_value("3") == 3
        assert parse_override_value("(1, 2)") == (1, 2)
        assert parse_override_value("True") is True
        assert parse_override_value("ours") == "ours"

    def test_dumps_results_matches_cli_contract(self, capsys):
        main(["--json", "table1"])
        out = capsys.readouterr().out
        result = run_scenario("table1")
        assert out == dumps_results([result.to_json()]) + "\n"


# -- code-version fingerprint --------------------------------------------------


class TestCodeVersion:
    def test_stable_hex(self):
        v = code_version()
        assert len(v) == 16
        int(v, 16)  # hex
        assert code_version() == v

    def test_clear_caches_recomputes_same_value(self):
        v = code_version()
        clear_caches()
        assert cache._FINGERPRINT is None
        assert code_version() == v

    def test_version_stamped_into_metadata_and_json(self, capsys):
        assert run_scenario("table1").metadata["version"] == code_version()
        main(["--json", "table1"])
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["metadata"]["version"] == code_version()


# -- cache thread-safety -------------------------------------------------------


class TestCacheThreadSafety:
    def test_caching_disabled_is_thread_local(self):
        calls = {"n": 0}
        lock = threading.Lock()

        @memoized
        def fn(x):
            with lock:
                calls["n"] += 1
            return x * 2

        assert fn(7) == 14  # warm: exactly one underlying call
        barrier = threading.Barrier(5)
        errors = []

        def bypassing():
            barrier.wait()
            with caching_disabled():
                for _ in range(50):
                    if fn(7) != 14:
                        errors.append("bad value in bypass thread")

        def hitting():
            barrier.wait()
            for _ in range(200):
                if fn(7) != 14:
                    errors.append("bad value in cached thread")

        threads = [threading.Thread(target=bypassing)]
        threads += [threading.Thread(target=hitting) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # 1 warm call + 50 bypassed calls; the 800 cached-thread calls all
        # hit.  The old module-global flag let the bypass thread disable
        # caching for everyone, inflating this count nondeterministically.
        assert calls["n"] == 51

    def test_disabled_flag_restored_after_exception(self):
        with pytest.raises(ValueError):
            with caching_disabled():
                raise ValueError("boom")
        assert not cache._bypassed()


# -- persistent store ----------------------------------------------------------


class TestResultStore:
    def test_round_trip_is_render_and_json_identical(self, tmp_path):
        # fig11_idle is the adversarial case: inf volumes in the records
        # and a float-keyed dict in the metadata.
        store = ResultStore(tmp_path)
        fresh = run_with_store("fig11_idle", store=store)
        loaded = run_with_store("fig11_idle", store=store)
        scenario = registry.get_scenario("fig11_idle")
        assert scenario.render(loaded) == scenario.render(fresh)
        assert loaded.to_json() == fresh.to_json()
        assert store.stats()["hits"] == 1

    def test_key_is_param_order_independent(self):
        a = result_key("fig13", {"target_error": 1e-11, "x": 1})
        b = result_key("fig13", {"x": 1, "target_error": 1e-11})
        assert a == b
        assert result_key("fig13", {"x": 2}) != result_key("fig13", {"x": 1})
        assert canonical_params(None) == canonical_params({})

    def test_key_is_type_faithful(self):
        # A build may treat a tuple and a list differently, so they must
        # not share one content address.
        assert (
            result_key("fig13", {"x": (1, 2)})
            != result_key("fig13", {"x": [1, 2]})
        )

    def test_get_misses_on_different_params(self, tmp_path, probe):
        store = ResultStore(tmp_path)
        run_with_store("svc_probe", store=store, x=1, delay=0.0)
        assert store.get("svc_probe", {"x": 2, "delay": 0.0}) is None
        assert store.get("svc_probe", {"delay": 0.0, "x": 1}) is not None

    def test_run_with_store_computes_once(self, tmp_path, probe):
        store = ResultStore(tmp_path)
        first = run_with_store("svc_probe", store=store, delay=0.0)
        second = run_with_store("svc_probe", store=store, delay=0.0)
        assert probe["calls"] == 1
        assert first.to_json() == second.to_json()

    def test_evict_clear_len(self, tmp_path):
        store = ResultStore(tmp_path)
        run_with_store("table1", store=store)
        run_with_store("fig6b", store=store)
        assert len(store) == 2
        assert store.stats()["entries"] == 2  # tracked, no directory walk
        assert store.evict("table1") is True
        assert store.evict("table1") is False
        assert len(store) == 1
        assert store.clear() == 1
        assert len(store) == 0
        assert store.stats()["entries"] == 0
        # A second handle seeds its tracked count from the disk census.
        run_with_store("table1", store=store)
        assert ResultStore(store.root).stats()["entries"] == 1

    def test_fingerprint_change_invalidates(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        monkeypatch.setattr(cache, "_FINGERPRINT", "0" * 16)
        result = run_scenario("table1")
        store.put(result)
        assert store.get("table1") is not None
        monkeypatch.setattr(cache, "_FINGERPRINT", "1" * 16)
        assert store.get("table1") is None  # unreachable under new version
        assert len(store) == 1  # ...but the stale file lingers
        assert store.purge_stale() == 1
        assert len(store) == 0

    def test_corrupt_entry_is_evicted_not_fatal(self, tmp_path):
        store = ResultStore(tmp_path)
        run_with_store("table1", store=store)
        entry = next(store.root.glob("*/*.json"))
        entry.write_text("{not json")
        assert store.get("table1") is None
        assert store.stats()["invalidations"] == 1
        assert len(store) == 0

    def test_env_var_sets_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "envstore"))
        store = ResultStore()
        assert store.root == tmp_path / "envstore"

    def test_round_trip_preserves_golden_numerics(self, tmp_path):
        store = ResultStore(tmp_path)
        run_with_store("fig6b", store=store)
        loaded = store.get("fig6b")
        curve = {r["se_rounds"]: r["volume"] for r in loaded.records}
        golden = json.loads((GOLDEN / "estimator_values.json").read_text())
        expected = golden["fig6b"]
        assert len(curve) == len(expected)
        for (rounds, volume), (grounds, gvolume) in zip(
            sorted(curve.items()), expected
        ):
            assert rounds == pytest.approx(grounds, abs=0.0)
            assert volume == pytest.approx(gvolume, rel=1e-12)


# -- job engine ----------------------------------------------------------------


class TestJobEngine:
    def test_concurrent_identical_requests_build_once(self, tmp_path, probe):
        engine = JobEngine(store=ResultStore(tmp_path), workers=4)
        barrier = threading.Barrier(8)
        outputs = [None] * 8

        def request(i):
            barrier.wait()
            result = engine.estimate("svc_probe", {"delay": 0.2})
            outputs[i] = dumps_results([result.to_json()])

        threads = [
            threading.Thread(target=request, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        engine.shutdown()
        assert probe["calls"] == 1
        assert len(set(outputs)) == 1  # byte-identical bodies

    def test_submit_coalesces_to_same_job_id(self, probe):
        engine = JobEngine(workers=1)
        jobs = [engine.submit("svc_probe", {"delay": 0.2}) for _ in range(5)]
        assert len({job.id for job in jobs}) == 1
        jobs[0].wait(timeout=10)
        stats = engine.stats()
        engine.shutdown()
        assert stats["submitted"] == 1
        assert stats["coalesced"] == 4
        assert stats["computed"] == 1

    def test_estimate_prefers_store_over_compute(self, tmp_path, probe):
        store = ResultStore(tmp_path)
        run_with_store("svc_probe", store=store, delay=0.0)
        assert probe["calls"] == 1
        engine = JobEngine(store=store, workers=1)
        engine.estimate("svc_probe", {"delay": 0.0})
        stats = engine.stats()
        engine.shutdown()
        assert probe["calls"] == 1  # never recomputed
        assert stats["store_hits"] == 1
        assert stats["submitted"] == 0

    def test_failed_job_raises_with_message(self, failing):
        engine = JobEngine(workers=1)
        with pytest.raises(JobError, match="intentional probe failure"):
            engine.estimate("svc_fail", timeout=10)
        stats = engine.stats()
        engine.shutdown()
        assert stats["failed"] == 1

    def test_cancel_queued_job(self, probe):
        engine = JobEngine(workers=1)
        blocker = engine.submit("svc_probe", {"delay": 0.3})
        victim = engine.submit("svc_probe", {"delay": 0.3, "x": 9})
        assert engine.cancel(victim.id) is True
        assert victim.state == "cancelled"
        assert victim.progress == 1.0
        with pytest.raises(JobError, match="cancelled"):
            victim.wait(timeout=10)
        blocker.wait(timeout=10)
        assert engine.cancel(blocker.id) is False  # already terminal
        engine.shutdown()
        assert probe["calls"] == 1  # victim never built

    def test_priority_runs_before_fifo(self, probe):
        engine = JobEngine(workers=1)
        blocker = engine.submit("svc_probe", {"delay": 0.3})
        low = engine.submit("svc_probe", {"delay": 0.0, "x": 2}, priority=5)
        high = engine.submit("svc_probe", {"delay": 0.0, "x": 3}, priority=0)
        low.wait(timeout=10)
        high.wait(timeout=10)
        blocker.wait(timeout=10)
        engine.shutdown()
        assert high.started_at < low.started_at

    def test_coalesced_urgent_duplicate_promotes_priority(self, probe):
        engine = JobEngine(workers=1)
        blocker = engine.submit("svc_probe", {"delay": 0.3})
        low = engine.submit("svc_probe", {"delay": 0.0, "x": 2}, priority=5)
        mid = engine.submit("svc_probe", {"delay": 0.0, "x": 3}, priority=3)
        dup = engine.submit("svc_probe", {"delay": 0.0, "x": 2}, priority=0)
        assert dup is low  # coalesced...
        assert low.priority == 0  # ...and promoted past the mid-priority job
        for job in (blocker, low, mid):
            job.wait(timeout=10)
        engine.shutdown()
        assert low.started_at < mid.started_at
        assert probe["calls"] == 3  # promotion did not double-run the job

    def test_terminal_jobs_are_pruned_beyond_retention(self, probe):
        engine = JobEngine(workers=1, retain_terminal=2)
        jobs = [
            engine.submit("svc_probe", {"delay": 0.0, "x": i})
            for i in range(4)
        ]
        for job in jobs:
            job.wait(timeout=10)
        engine.shutdown()
        assert engine.stats()["jobs_tracked"] == 2
        with pytest.raises(KeyError):
            engine.job(jobs[0].id)
        assert engine.job(jobs[-1].id) is jobs[-1]

    def test_submit_validates_up_front(self, probe):
        engine = JobEngine(workers=1)
        with pytest.raises(KeyError):
            engine.submit("no_such_scenario")
        with pytest.raises(ValueError, match="bogus_knob"):
            engine.submit("svc_probe", {"bogus_knob": 1})
        engine.shutdown()
        with pytest.raises(RuntimeError):
            engine.submit("svc_probe")


# -- HTTP API ------------------------------------------------------------------


@pytest.fixture(scope="module")
def service_client():
    with local_service(workers=4) as client:
        yield client


class TestHTTPApi:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_estimate_bit_identical_to_cli_json(
        self, name, service_client, capsys
    ):
        main(["--json", name])
        cli = capsys.readouterr().out.encode()
        assert service_client.estimate_raw(name) == cli

    def test_estimate_with_params_bit_identical(self, service_client, capsys):
        main(["--json", "fig6b", "--param", "target_error=1e-9"])
        cli = capsys.readouterr().out.encode()
        api = service_client.estimate_raw("fig6b", target_error="1e-9")
        assert api == cli

    def test_healthz(self, service_client):
        health = service_client.healthz()
        assert health["status"] == "ok"
        assert health["version"] == code_version()
        assert health["scenarios"] == len(SCENARIOS)

    def test_scenarios_lists_registry(self, service_client):
        listing = service_client.scenarios()["scenarios"]
        by_name = {s["name"]: s for s in listing}
        assert set(by_name) >= set(SCENARIOS)
        assert "target_error" in by_name["fig6b"]["params"]

    def test_unknown_scenario_404_names_alternatives(self, service_client):
        with pytest.raises(ServiceError) as excinfo:
            service_client.estimate_raw("nope")
        assert excinfo.value.status == 404
        assert "table2" in excinfo.value.payload["available"]

    def test_unknown_param_400_names_key(self, service_client):
        with pytest.raises(ServiceError) as excinfo:
            service_client.estimate_raw("fig6b", bogus_knob=3)
        assert excinfo.value.status == 400
        assert excinfo.value.payload["keys"] == ["bogus_knob"]
        assert "bogus_knob" in excinfo.value.payload["error"]

    def test_missing_scenario_key_400(self, service_client):
        with pytest.raises(ServiceError) as excinfo:
            service_client._request("/estimate")
        assert excinfo.value.status == 400

    def test_unknown_route_and_job_404(self, service_client):
        with pytest.raises(ServiceError) as excinfo:
            service_client._request("/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            service_client.job("job-999999")
        assert excinfo.value.status == 404

    def test_async_job_lifecycle(self, service_client):
        submitted = service_client.submit("fig6b", target_error="1e-10")
        job_id = submitted["job"]["id"]
        assert submitted["status_url"] == f"/jobs/{job_id}"
        payload = service_client.wait(job_id, timeout=30)
        assert payload["job"]["state"] == "done"
        assert payload["job"]["progress"] == 1.0
        assert payload["result"]["scenario"] == "fig6b"
        assert payload["result"]["metadata"]["target_error"] == 1e-10
        # Cancelling a finished job is a 409/no-op, not an error.
        assert service_client.cancel(job_id)["cancelled"] is False

    def test_concurrent_http_requests_coalesce(self, service_client, probe):
        bodies = [None] * 8
        barrier = threading.Barrier(8)

        def request(i):
            barrier.wait()
            bodies[i] = service_client.estimate_raw(
                "svc_probe", delay="0.2", x="5"
            )

        threads = [
            threading.Thread(target=request, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert probe["calls"] == 1
        assert len(set(bodies)) == 1

    def test_nonfinite_param_serializes_rfc_valid(self, service_client):
        # parse_override_value('1e999') is float('inf'); the job snapshot
        # echoing it must emit null, never a bare Infinity token.
        submitted = service_client.submit("fig6b", target_error="1e999")
        assert submitted["job"]["params"]["target_error"] is None
        service_client.wait(submitted["job"]["id"], timeout=30)
        _, raw = service_client._request(f"/jobs/{submitted['job']['id']}")
        assert b"Infinity" not in raw
        json.loads(raw)

    def test_stats_endpoint_shape(self, service_client):
        stats = service_client.stats()
        assert {"hits", "misses", "puts"} <= set(stats["store"])
        assert {"submitted", "coalesced", "computed"} <= set(stats["jobs"])
        assert any("timing_model" in name for name in stats["cache"])

    def test_stats_reports_latency_percentiles(self, service_client):
        service_client.healthz()  # ensure at least one timed request
        metrics = service_client.stats()["metrics"]
        assert metrics["enabled"] is True
        assert set(metrics) >= {
            "decode_seconds_p50",
            "decode_seconds_p99",
            "request_seconds_p50",
            "request_seconds_p99",
        }
        # The stats request itself may be the first; the healthz above
        # guarantees the request histogram has an observation by now.
        p50 = metrics["request_seconds_p50"]
        assert p50 is None or p50 >= 0

    def test_metrics_endpoint_is_valid_prometheus(self, service_client):
        import repro.decoder.base  # noqa: F401 -- declare decoder families
        import repro.decoder.engine  # noqa: F401 -- declare engine families

        service_client.healthz()  # populate the request-latency series
        text = service_client.metrics()
        families = parse_prometheus(text)
        for name in (
            "repro_engine_shots_total",  # engine
            "repro_decode_seconds",  # decoder latency histogram
            "repro_cache_hits",  # cache collector
            "repro_jobs_queue_depth",  # job-engine collector
            "repro_store_entries",  # store collector
            "repro_http_request_seconds",  # request latency
            "repro_http_requests_total",
        ):
            assert name in families, f"{name} missing from /metrics"
        requests = families["repro_http_requests_total"]["samples"]
        assert any(
            labels.get("endpoint") == "healthz" and labels.get("status") == "200"
            for _, labels, _ in requests
        )
        latency = families["repro_http_request_seconds"]["samples"]
        assert any(name.endswith("_bucket") for name, _, _ in latency)


# -- CLI warm start ------------------------------------------------------------


class TestCLIStore:
    def test_env_var_enables_bit_identical_warm_runs(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        main(["--json", "table2"])
        cold = capsys.readouterr().out
        clear_caches()
        main(["--json", "table2"])
        warm = capsys.readouterr().out
        assert warm == cold
        assert len(ResultStore(tmp_path)) == 1

    def test_warm_text_render_identical_through_store(
        self, tmp_path, monkeypatch, capsys
    ):
        # fig11_idle's float-keyed metadata must survive the store for the
        # text renderer, not just for --json.
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        main(["fig11_idle"])
        cold = capsys.readouterr().out
        main(["fig11_idle"])
        warm = capsys.readouterr().out
        assert warm == cold

    def test_store_dir_flag_overrides_env(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env"))
        main(["--json", "table1", "--store-dir", str(tmp_path / "flag")])
        capsys.readouterr()
        assert len(ResultStore(tmp_path / "flag")) == 1
        assert not (tmp_path / "env").exists()

    def test_store_off_by_default(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        main(["--json", "table1"])
        capsys.readouterr()
        # No store directory materializes anywhere under tmp_path.
        assert list(tmp_path.iterdir()) == []
