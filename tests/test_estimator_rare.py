"""Tests for the rare-event Monte-Carlo engine.

Covers DEM reweighting (cap, merge commutation, consistency gating), the
``check_reweight`` defect matrix, weighted EngineResult statistics and the
Wilson CI, importance-sampled runs (unbiasedness in the overlap region,
worker-count invariance, early-stop contracts), adaptive sweep shot
budgeting, and the ``memory_rare`` scenario.
"""

import math

import numpy as np
import pytest

from repro.analysis import available_passes, check_reweight, verify_dem
from repro.analysis.diagnostics import VerificationError
from repro.decoder.engine import DecodingEngine, EngineResult
from repro.estimator.rare import (
    ImportanceSampler,
    rare_engine,
    suggested_inflation,
)
from repro.estimator.sweep import adaptive_shots, grid
from repro.noise.dem import DetectorErrorModel, ErrorMechanism, extract_dem
from repro.sim.memory import memory_circuit


def _dem(mechs, num_detectors=4, num_observables=1):
    return DetectorErrorModel(
        tuple(ErrorMechanism(p, tuple(d), tuple(o)) for p, d, o in mechs),
        num_detectors,
        num_observables,
    )


# -- DetectorErrorModel.reweighted ----------------------------------------------


class TestReweighted:
    def test_uniform_inflation(self):
        dem = _dem([(0.01, (0,), ()), (0.02, (1, 2), (0,))])
        out = dem.reweighted(3.0)
        assert [m.probability for m in out.mechanisms] == [
            pytest.approx(0.03), pytest.approx(0.06)
        ]

    def test_topology_preserved(self):
        dem = _dem([(0.01, (0,), ()), (0.02, (1, 2), (0,))])
        out = dem.reweighted(5.0)
        assert [(m.detectors, m.observables) for m in out.mechanisms] == [
            (m.detectors, m.observables) for m in dem.mechanisms
        ]
        assert out.num_detectors == dem.num_detectors
        assert out.num_observables == dem.num_observables

    def test_cap_at_half(self):
        dem = _dem([(0.2, (0,), ())])
        assert dem.reweighted(10.0).mechanisms[0].probability == 0.5

    def test_custom_cap(self):
        dem = _dem([(0.2, (0,), ())])
        assert dem.reweighted(10.0, max_probability=0.4).mechanisms[
            0
        ].probability == 0.4

    def test_invalid_args(self):
        dem = _dem([(0.1, (0,), ())])
        with pytest.raises(ValueError, match="inflation"):
            dem.reweighted(0.0)
        with pytest.raises(ValueError, match="max_probability"):
            dem.reweighted(2.0, max_probability=0.7)

    def test_commutes_with_merge_for_disjoint_symptoms(self):
        # Distinct symptom sets: merged() only sorts, so reweight and
        # merge must commute exactly.
        dem = _dem([
            (0.03, (1, 2), ()),
            (0.01, (0,), ()),
            (0.02, (3,), (0,)),
        ])
        a = dem.reweighted(4.0).merged()
        b = dem.merged().reweighted(4.0)
        assert a.mechanisms == b.mechanisms

    def test_verify_dem_rejects_over_inflated(self):
        # Seeded defect: a mechanism pushed beyond 0.5 (bypassing the
        # reweighted() cap) must be an error in dem_consistency.
        bad = _dem([(0.7, (0,), ())])
        with pytest.raises(VerificationError, match="exceeds 0.5"):
            verify_dem(bad)


# -- check_reweight defect matrix -----------------------------------------------


class TestCheckReweight:
    def _pair(self):
        dem = _dem([(0.01, (0,), ()), (0.02, (1, 2), (0,))])
        return dem, dem.reweighted(3.0)

    def test_clean_pair(self):
        dem, prop = self._pair()
        assert check_reweight(dem, prop) == []

    def test_symptom_space_mismatch(self):
        dem, _ = self._pair()
        other = _dem([(0.01, (0,), ()), (0.02, (1, 2), (0,))],
                     num_detectors=5)
        diags = check_reweight(dem, other)
        assert any("symptom space" in d.message for d in diags)

    def test_mechanism_count_change(self):
        dem, _ = self._pair()
        dropped = _dem([(0.03, (0,), ())])
        diags = check_reweight(dem, dropped)
        assert any("one-for-one" in d.message for d in diags)

    def test_symptom_change(self):
        dem, _ = self._pair()
        moved = _dem([(0.03, (1,), ()), (0.06, (1, 2), (0,))])
        diags = check_reweight(dem, moved)
        assert any("symptom changed" in d.message for d in diags)

    def test_zero_proposal_weight(self):
        dem, _ = self._pair()
        starved = _dem([(0.0, (0,), ()), (0.06, (1, 2), (0,))])
        diags = check_reweight(dem, starved)
        assert any("zero proposal weight" in d.message for d in diags)
        assert any(d.severity == "error" for d in diags)

    def test_over_half_proposal(self):
        dem, _ = self._pair()
        hot = _dem([(0.6, (0,), ()), (0.06, (1, 2), (0,))])
        diags = check_reweight(dem, hot)
        assert any("exceeds 0.5" in d.message for d in diags)

    def test_inflated_zero_prob_warns(self):
        dem = _dem([(0.0, (0,), ()), (0.02, (1, 2), (0,))])
        prop = _dem([(0.1, (0,), ()), (0.06, (1, 2), (0,))])
        diags = check_reweight(dem, prop)
        assert any(
            d.severity == "warning" and "zero-probability" in d.message
            for d in diags
        )

    def test_pass_registered(self):
        assert "dem_reweight" in available_passes(scope="circuit")


# -- EngineResult statistics ----------------------------------------------------


class TestEngineResult:
    def test_uniform_defaults(self):
        res = EngineResult(shots=100, failures=7, shards=2)
        assert res.weighted_failures == 7.0
        assert res.weight_sum == 100.0
        assert res.ess == 100.0
        assert res.weighted_rate == res.rate == pytest.approx(0.07)

    def test_add_merges_all_fields(self):
        a = EngineResult(shots=10, failures=1, shards=1,
                         shots_beyond_stop=5)
        b = EngineResult(shots=20, failures=3, shards=2)
        c = a + b
        assert (c.shots, c.failures, c.shards) == (30, 4, 3)
        assert c.weight_sum == 30.0
        assert c.weighted_failures == 4.0
        assert c.shots_beyond_stop == 5

    def test_variance_uniform_matches_binomial(self):
        res = EngineResult(shots=1000, failures=100, shards=1)
        # Unbiased sample variance of a Bernoulli(0.1) sample, over n.
        expected = (100 - 1000 * 0.1 * 0.1) / (999 * 1000)
        assert res.variance == pytest.approx(expected)
        assert res.std_error == pytest.approx(math.sqrt(expected))
        assert res.rel_error == pytest.approx(res.std_error / 0.1)

    def test_degenerate_variance(self):
        assert EngineResult(shots=0, failures=0, shards=0).variance == 0.0
        assert EngineResult(shots=1, failures=0, shards=1).variance == math.inf
        assert EngineResult(shots=0, failures=0, shards=0).rel_error == math.inf

    def test_wilson_ci_known_values(self):
        # 3/10 at 95%: the textbook Wilson interval (0.1078, 0.6032).
        res = EngineResult(shots=10, failures=3, shards=1)
        low, high = res.failure_rate_ci()
        assert low == pytest.approx(0.10779, abs=1e-4)
        assert high == pytest.approx(0.60322, abs=1e-4)

    def test_wilson_ci_zero_failures_informative(self):
        # 0/50 at 95%: upper bound ~ z^2/(n + z^2), not zero.
        res = EngineResult(shots=50, failures=0, shards=1)
        low, high = res.failure_rate_ci()
        assert low == 0.0
        z = 1.959964
        assert high == pytest.approx(z * z / (50 + z * z), abs=1e-6)

    def test_wilson_ci_validation(self):
        res = EngineResult(shots=10, failures=3, shards=1)
        with pytest.raises(ValueError, match="level"):
            res.failure_rate_ci(level=1.0)
        assert EngineResult(shots=0, failures=0, shards=0).failure_rate_ci() \
            == (0.0, 1.0)


# -- ImportanceSampler ----------------------------------------------------------


@pytest.fixture(scope="module")
def d3_circuit():
    return memory_circuit(3, 2, 3e-3)


@pytest.fixture(scope="module")
def d3_dem(d3_circuit):
    return extract_dem(d3_circuit)


class TestImportanceSampler:
    def test_requires_proposal_or_inflation(self, d3_dem):
        with pytest.raises(ValueError, match="proposal"):
            ImportanceSampler(d3_dem)
        with pytest.raises(ValueError, match="not both"):
            ImportanceSampler(
                d3_dem, d3_dem.reweighted(2.0), inflation=2.0
            )

    def test_verify_gate_rejects_broken_pair(self, d3_dem):
        starved = DetectorErrorModel(
            tuple(
                ErrorMechanism(0.0, m.detectors, m.observables)
                for m in d3_dem.mechanisms
            ),
            d3_dem.num_detectors,
            d3_dem.num_observables,
        )
        with pytest.raises(VerificationError):
            ImportanceSampler(d3_dem, starved)

    def test_inflation_one_gives_unit_weights(self, d3_dem):
        sampler = ImportanceSampler(d3_dem, inflation=1.0)
        det, obs, llr = sampler.sample_weighted(
            256, np.random.default_rng(3)
        )
        assert det.shape == (256, (d3_dem.num_detectors + 7) // 8)
        assert obs.shape == (256, (d3_dem.num_observables + 7) // 8)
        assert np.all(llr == 0.0)

    def test_matches_unweighted_dem_statistics(self, d3_dem):
        # At inflation 1 the sampler draws the original model: the mean
        # detector-bit density must match sum(p_k * |detectors_k|) / nd.
        sampler = ImportanceSampler(d3_dem, inflation=1.0)
        det, _, _ = sampler.sample_weighted(
            20_000, np.random.default_rng(11)
        )
        bits = np.unpackbits(det, axis=1, count=d3_dem.num_detectors)
        expected = sum(
            m.probability * len(m.detectors) for m in d3_dem.mechanisms
        )
        # Firings XOR (rarely overlapping at p~3e-3), so the observed bit
        # count sits just under the expected firing-bit count.
        assert bits.sum() / 20_000 == pytest.approx(expected, rel=0.1)

    def test_weighted_mean_is_unbiased_for_known_model(self):
        # Two-mechanism model where the failure probability is exact:
        # the observable flips iff mechanism 1 fires.
        dem = _dem(
            [(0.01, (0,), ()), (0.004, (1,), (0,))],
            num_detectors=2,
        )
        sampler = ImportanceSampler(dem, inflation=20.0)
        rng = np.random.default_rng(5)
        det, obs, llr = sampler.sample_weighted(200_000, rng)
        w = np.exp(llr)
        fails = np.unpackbits(obs, axis=1, count=1)[:, 0].astype(bool)
        estimate = float(w[fails].sum()) / 200_000
        assert estimate == pytest.approx(0.004, rel=0.05)
        # Weight normalization: E_q[w] = 1.
        assert float(w.mean()) == pytest.approx(1.0, rel=0.02)


class TestSuggestedInflation:
    def test_monotonic_in_failure_weight(self):
        dem = _dem([(0.01, (0,), ()), (0.02, (1,), ())])
        s2 = suggested_inflation(dem, 2)
        s4 = suggested_inflation(dem, 4)
        assert 1.0 < s2 < s4

    def test_zero_mass_model(self):
        dem = _dem([(0.0, (0,), ())])
        assert suggested_inflation(dem, 3) == 1.0

    def test_validation(self):
        dem = _dem([(0.01, (0,), ())])
        with pytest.raises(ValueError, match="min_failure_weight"):
            suggested_inflation(dem, 0)

    def test_solves_stationarity(self):
        # s maximizes s^k exp(-T(s-1)^2/s)  <=>  k = T (s - 1/s).
        dem = _dem([(0.2, (0,), ()), (0.3, (1,), ())])
        total = 0.5
        s = suggested_inflation(dem, 3)
        assert total * (s - 1.0 / s) == pytest.approx(3.0)


# -- importance-sampled engine runs ---------------------------------------------


class TestRareEngine:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_agrees_with_brute_force_d3(self, d3_circuit, seed):
        # Overlap region: both estimators measure the same quantity;
        # sigma is statistical + the O(p^2) DEM-approximation offset.
        with DecodingEngine(
            d3_circuit, "mwpm", shard_shots=2048
        ) as brute:
            rb = brute.run(60_000, seed=seed)
        with rare_engine(
            d3_circuit, "mwpm", inflation=3.0, shard_shots=2048
        ) as rare:
            ri = rare.run(20_000, seed=seed)
        sigma = math.hypot(rb.std_error, ri.std_error)
        assert abs(ri.weighted_rate - rb.rate) <= 2.0 * sigma
        assert ri.ess > 0.1 * ri.shots

    def test_agrees_with_brute_force_d5(self):
        circuit = memory_circuit(5, 2, 3e-3)
        with DecodingEngine(circuit, "mwpm", shard_shots=4096) as brute:
            rb = brute.run(60_000, seed=23)
        with rare_engine(
            circuit, "mwpm", inflation=2.5, shard_shots=4096
        ) as rare:
            ri = rare.run(15_000, seed=23)
        sigma = math.hypot(rb.std_error, ri.std_error)
        assert abs(ri.weighted_rate - rb.rate) <= 2.0 * sigma

    def test_worker_count_invariance(self, d3_circuit):
        results = []
        for workers in (1, 4):
            with rare_engine(
                d3_circuit, "mwpm", inflation=4.0,
                shard_shots=512, workers=workers,
            ) as engine:
                results.append(engine.run(4096, seed=13))
        a, b = results
        assert a.weighted_failures == b.weighted_failures
        assert a.weighted_failures_sq == b.weighted_failures_sq
        assert a.weight_sum == b.weight_sum
        assert a.weight_sq_sum == b.weight_sq_sum
        assert a.ess == b.ess
        assert (a.shots, a.failures, a.shards) == (b.shots, b.failures, b.shards)

    def test_collect_unavailable(self, d3_circuit):
        with rare_engine(d3_circuit, "mwpm", inflation=2.0) as engine:
            with pytest.raises(ValueError, match="collect"):
                engine.collect(100)

    def test_default_inflation_from_suggestion(self, d3_circuit, d3_dem):
        with rare_engine(
            d3_circuit, "mwpm", min_failure_weight=2
        ) as engine:
            assert engine.sampler.inflation == pytest.approx(
                suggested_inflation(d3_dem, 2)
            )


class TestEarlyStopContracts:
    def test_shots_beyond_stop_multi_worker(self, d3_circuit):
        # target_failures=1 with several shards in flight: the stop lands
        # inside the first wave, and the rest of that wave is overshoot.
        kwargs = dict(shard_shots=64, observable=None)
        with DecodingEngine(
            d3_circuit, "mwpm", workers=4, **kwargs
        ) as engine:
            multi = engine.run_until(1, 4096, seed=101)
        with DecodingEngine(
            d3_circuit, "mwpm", workers=1, **kwargs
        ) as engine:
            serial = engine.run_until(1, 4096, seed=101)
        # Counted prefix is worker-invariant; the overshoot is not.
        assert (multi.shots, multi.failures, multi.shards) == (
            serial.shots, serial.failures, serial.shards
        )
        assert serial.shots_beyond_stop == 0
        assert multi.shots_beyond_stop > 0
        assert multi.shots_beyond_stop % 64 == 0

    def test_fixed_run_has_no_overshoot(self, d3_circuit):
        with DecodingEngine(d3_circuit, "mwpm", shard_shots=64) as engine:
            res = engine.run(640, seed=3)
        assert res.shots_beyond_stop == 0

    def test_run_until_rel_error_stops(self, d3_circuit):
        with rare_engine(
            d3_circuit, "mwpm", inflation=3.0, shard_shots=1024
        ) as engine:
            res = engine.run_until_rel_error(0.2, 200_000, seed=7)
        assert res.failures >= 5
        assert res.rel_error <= 0.2
        assert res.shots < 200_000

    def test_run_until_rel_error_respects_cap(self, d3_circuit):
        with DecodingEngine(d3_circuit, "mwpm", shard_shots=512) as engine:
            res = engine.run_until_rel_error(1e-6, 2048, seed=7)
        assert res.shots == 2048

    def test_run_until_rel_error_invariance(self, d3_circuit):
        results = []
        for workers in (1, 3):
            with rare_engine(
                d3_circuit, "mwpm", inflation=3.0,
                shard_shots=512, workers=workers,
            ) as engine:
                results.append(
                    engine.run_until_rel_error(0.25, 100_000, seed=19)
                )
        a, b = results
        assert (a.shots, a.failures) == (b.shots, b.failures)
        assert a.weighted_failures == b.weighted_failures
        assert a.ess == b.ess

    def test_run_until_rel_error_validation(self, d3_circuit):
        with DecodingEngine(d3_circuit, "mwpm") as engine:
            with pytest.raises(ValueError, match="target_rel_err"):
                engine.run_until_rel_error(0.0, 100)
            with pytest.raises(ValueError, match="min_failures"):
                engine.run_until_rel_error(0.1, 100, min_failures=0)


# -- adaptive sweep budgeting ---------------------------------------------------


def _binomial_run_point(point, shots, seq):
    rng = np.random.default_rng(seq)
    return EngineResult(
        shots=shots,
        failures=int(rng.binomial(shots, point["p"])),
        shards=1,
    )


class TestAdaptiveShots:
    def test_budget_spent_exactly(self):
        records = adaptive_shots(
            _binomial_run_point,
            grid(p=[0.2, 0.001, 0.05]),
            total_shots=5000, wave_shots=500, initial_shots=200, seed=3,
        )
        assert sum(r["shots"] for r in records) == 5000
        assert all(r["shots"] >= 200 for r in records)

    def test_allocates_to_widest_ci(self):
        # The high-rate point has the widest binomial CI throughout, so
        # it must absorb every adaptive wave.
        records = adaptive_shots(
            _binomial_run_point,
            grid(p=[0.4, 1e-5]),
            total_shots=3000, wave_shots=500, initial_shots=500, seed=1,
        )
        by_p = {r["p"]: r for r in records}
        assert by_p[0.4]["shots"] == 2500
        assert by_p[1e-5]["shots"] == 500

    def test_deterministic(self):
        args = dict(
            total_shots=4000, wave_shots=400, initial_shots=200, seed=9
        )
        spec = grid(p=[0.1, 0.02])
        assert adaptive_shots(_binomial_run_point, spec, **args) == \
            adaptive_shots(_binomial_run_point, spec, **args)

    def test_record_fields(self):
        records = adaptive_shots(
            _binomial_run_point, grid(p=[0.1]),
            total_shots=1000, wave_shots=500, seed=2,
        )
        (rec,) = records
        for field in (
            "shots", "failures", "rate", "weighted_rate", "std_error",
            "ess", "ci_low", "ci_high", "waves",
        ):
            assert field in rec
        assert rec["ci_low"] <= rec["rate"] <= rec["ci_high"]
        assert rec["waves"] == 2

    def test_budget_validation(self):
        with pytest.raises(ValueError, match="exceeds total_shots"):
            adaptive_shots(
                _binomial_run_point, grid(p=[0.1, 0.2]),
                total_shots=300, wave_shots=100, initial_shots=200,
            )
        with pytest.raises(ValueError, match="total_shots"):
            adaptive_shots(
                _binomial_run_point, grid(p=[0.1]),
                total_shots=0, wave_shots=100,
            )

    def test_wave_seeds_are_order_independent(self):
        # The (point, wave) seed stream is a pure function of the grid
        # index and wave ordinal: reordering *other* axes' allocation
        # cannot change what a given point's first wave samples.
        seen = {}

        def record_seeds(point, shots, seq):
            seen.setdefault(point["p"], []).append(seq.spawn_key)
            return _binomial_run_point(point, shots, seq)

        adaptive_shots(
            record_seeds, grid(p=[0.3, 0.1]),
            total_shots=2000, wave_shots=500, initial_shots=500, seed=4,
        )
        assert seen[0.3][0] == (0, 0)
        assert seen[0.1][0] == (1, 0)


# -- memory_rare scenario -------------------------------------------------------


class TestMemoryRareScenario:
    def test_build_smoke(self):
        from repro.experiments.rare_sweeps import _build_memory_rare

        result = _build_memory_rare(
            distances=(3,), ps=(3e-3, 1e-3), rounds=2,
            total_shots=1200, wave_shots=300, initial_shots=300, seed=5,
        )
        assert result.scenario == "memory_rare"
        assert len(result.records) == 2
        assert sum(r["shots"] for r in result.records) == 1200
        for rec in result.records:
            assert rec["inflation"] > 1.0
            assert rec["ess"] > 0.0

    def test_render(self):
        from repro.estimator.registry import get_scenario
        from repro.experiments.rare_sweeps import _build_memory_rare

        result = _build_memory_rare(
            distances=(3,), ps=(3e-3,), rounds=2,
            total_shots=600, wave_shots=300, initial_shots=300, seed=5,
        )
        text = get_scenario("memory_rare").render(result)
        assert "importance-sampled" in text

    def test_registered(self):
        from repro.estimator.registry import available_scenarios

        assert "memory_rare" in available_scenarios()
