"""Shared test configuration.

Strict IR verification is on for the whole suite: every circuit the
experiment builders construct during tests passes the structural
diagnostics passes of :mod:`repro.analysis` (clean before the noise
transform, marker-free after), so an invariant regression anywhere in the
builder/noise pipeline fails loudly here instead of skewing a logical
error rate downstream.  Individual tests opt out with ``strict=False``.
"""

import os

os.environ.setdefault("REPRO_STRICT", "1")
