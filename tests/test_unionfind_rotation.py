"""Tests for the union-find decoder and rotation-synthesis costs."""

import numpy as np
import pytest

from repro.algorithms.rotation_synthesis import RotationCost, qpe_rotation_budget
from repro.decoder.graph import DecodingGraph
from repro.decoder.mwpm import MWPMDecoder
from repro.decoder.union_find import UnionFindDecoder
from repro.sim.frame import DetectorErrorModel, ErrorMechanism, FrameSimulator
from repro.sim.memory import memory_circuit


def chain_dem():
    return DetectorErrorModel(
        [
            ErrorMechanism(0.01, (0,), (0,)),
            ErrorMechanism(0.01, (0, 1), ()),
            ErrorMechanism(0.01, (1, 2), ()),
            ErrorMechanism(0.01, (2,), ()),
        ],
        3,
        1,
    )


class TestUnionFind:
    def test_empty_syndrome(self):
        dec = UnionFindDecoder(DecodingGraph.from_dem(chain_dem()))
        assert not dec.decode(np.zeros(3, dtype=np.uint8)).any()

    def test_boundary_matching_flips_observable(self):
        dec = UnionFindDecoder(DecodingGraph.from_dem(chain_dem()))
        assert dec.decode(np.array([1, 0, 0], dtype=np.uint8))[0] == 1

    def test_internal_pair_no_flip(self):
        dec = UnionFindDecoder(DecodingGraph.from_dem(chain_dem()))
        assert dec.decode(np.array([1, 1, 0], dtype=np.uint8))[0] == 0

    def test_far_defect_uses_near_boundary(self):
        dec = UnionFindDecoder(DecodingGraph.from_dem(chain_dem()))
        assert dec.decode(np.array([0, 0, 1], dtype=np.uint8))[0] == 0

    def test_memory_experiment_decoding(self):
        # Union-find must decode a real d=3 memory circuit and correct a
        # large majority of shots at low noise.
        circuit = memory_circuit(3, 3, 0.002)
        sim = FrameSimulator(circuit, rng=np.random.default_rng(3))
        dem = sim.detector_error_model()
        dec = UnionFindDecoder(DecodingGraph.from_dem(dem))
        dets, obs = sim.sample(400)
        predictions = dec.decode_batch(dets)
        failures = int(np.sum(predictions[:, 0] ^ obs[:, 0]))
        assert failures / 400 < 0.1

    def test_not_much_worse_than_mwpm(self):
        # The accuracy gap vs MWPM is bounded (the paper's alpha story).
        circuit = memory_circuit(3, 3, 0.004)
        sim = FrameSimulator(circuit, rng=np.random.default_rng(5))
        dem = sim.detector_error_model()
        graph = DecodingGraph.from_dem(dem)
        dets, obs = sim.sample(400)
        uf_failures = int(
            np.sum(UnionFindDecoder(graph).decode_batch(dets)[:, 0] ^ obs[:, 0])
        )
        mwpm_failures = int(
            np.sum(MWPMDecoder(graph).decode_batch(dets)[:, 0] ^ obs[:, 0])
        )
        assert uf_failures <= max(4 * mwpm_failures, mwpm_failures + 20)

    def test_batch_shape(self):
        dec = UnionFindDecoder(DecodingGraph.from_dem(chain_dem()))
        out = dec.decode_batch(np.zeros((7, 3), dtype=np.uint8))
        assert out.shape == (7, 1)


class TestRotationSynthesis:
    def test_angle_bits_scale_with_accuracy(self):
        assert RotationCost(1e-3).angle_bits < RotationCost(1e-9).angle_bits

    def test_gradient_toffolis_equal_bits(self):
        cost = RotationCost(1e-6)
        assert cost.gradient_toffolis == cost.angle_bits

    def test_synthesis_t_count_log_scaling(self):
        t3 = RotationCost(1e-3).synthesis_t_count
        t6 = RotationCost(1e-6).synthesis_t_count
        assert t6 == pytest.approx(t3 + 1.15 * math_log2_ratio(), rel=0.01)

    def test_gradient_faster_for_typical_accuracy(self):
        # b-bit addition beats ~1.15 log(1/eps) sequential T gates when the
        # addition ripples at the same reaction cadence but b < T-count.
        cost = RotationCost(1e-9)
        assert cost.gradient_time < 2 * cost.synthesis_time

    def test_preferred_route_is_reported(self):
        assert RotationCost(1e-6).preferred_route() in ("gradient", "synthesis")

    def test_qpe_budget_splits_evenly(self):
        assert qpe_rotation_budget(3072, 0.03) == pytest.approx(0.03 / 3072)

    def test_invalid_accuracy_rejected(self):
        with pytest.raises(ValueError):
            RotationCost(0.0)


def math_log2_ratio() -> float:
    import math

    return math.log2(1e-3 / 1e-6)
