"""Property tests for the compiled bit-packed frame pipeline.

The unpacked sampler (:meth:`FrameSimulator.sample`) is the reference
oracle: for the same seed, the compiled packed pipeline must reproduce its
detector and observable tables *bit for bit* -- across every op type
(including the SWAP/CZ/MX/DEPOLARIZE2 edge paths), fused-gate runs,
duplicate targets, and awkward shot counts.  A tableau simulator
cross-check pins the compiled program's gate semantics against an
independent implementation.
"""

import numpy as np
import pytest

from repro.sim.circuit import Circuit
from repro.sim.compiled import CompiledProgram, transpose_packed
from repro.sim.frame import FrameSimulator
from repro.sim.memory import memory_circuit, transversal_cnot_experiment
from repro.sim.tableau import TableauSimulator


def assert_bit_identical(circuit: Circuit, shots: int, seed: int) -> None:
    """Packed and unpacked samples of the same seed must agree exactly."""
    sim = FrameSimulator(circuit)
    det_ref, obs_ref = sim.sample(shots, rng=np.random.default_rng(seed))
    det_keys, obs_keys = sim.sample_packed(shots, rng=np.random.default_rng(seed))
    assert det_keys.shape == (shots, (circuit.num_detectors + 7) // 8)
    assert obs_keys.shape == (shots, (circuit.num_observables + 7) // 8)
    det = np.unpackbits(det_keys, axis=1, count=circuit.num_detectors)
    obs = np.unpackbits(obs_keys, axis=1, count=circuit.num_observables)
    np.testing.assert_array_equal(det_ref, det)
    np.testing.assert_array_equal(obs_ref, obs)


def random_clifford_noise_circuit(rng: np.random.Generator, qubits: int = 6) -> Circuit:
    """Random circuit exercising every op type the frame sampler supports."""
    circuit = Circuit()
    circuit.reset(*range(qubits))
    measured = 0
    for _ in range(40):
        kind = int(rng.integers(0, 14))
        q = int(rng.integers(0, qubits))
        a, b = (int(x) for x in rng.choice(qubits, size=2, replace=False))
        p = float(rng.uniform(0.05, 0.5))
        if kind == 0:
            circuit.h(q)
        elif kind == 1:
            circuit.s(q)
        elif kind == 2:
            circuit.append("S_DAG", (q,))
        elif kind == 3:
            circuit.cx(a, b)
        elif kind == 4:
            circuit.cz(a, b)
        elif kind == 5:
            circuit.swap(a, b)
        elif kind == 6:
            circuit.append("R" if rng.random() < 0.5 else "RX", (q,))
        elif kind == 7:
            circuit.x_error([a, b], p)
        elif kind == 8:
            circuit.z_error([q], p)
        elif kind == 9:
            circuit.append("Y_ERROR", (q,), p)
        elif kind == 10:
            circuit.depolarize1([a, b], p)
        elif kind == 11:
            circuit.depolarize2([a, b], p)
        elif kind == 12:
            px, py, pz = (float(x) for x in rng.dirichlet((1, 1, 1)) * p)
            circuit.pauli_channel_1([a, b], px, py, pz)
        else:
            probs = rng.dirichlet(np.ones(15)) * p
            circuit.pauli_channel_2([a, b], [float(x) for x in probs])
        # Interleave measurements so records accumulate mid-circuit.
        if rng.random() < 0.25:
            if rng.random() < 0.5:
                circuit.measure(q)
            else:
                circuit.measure_x(q)
            measured += 1
            if measured >= 2 and rng.random() < 0.5:
                circuit.detector([measured - 2, measured - 1])
    circuit.measure(*range(qubits))
    base = measured
    for q in range(qubits):
        circuit.detector([base + q])
    circuit.observable_include(0, [base, base + 1])
    return circuit


class TestPackedUnpackedEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_circuits(self, seed):
        rng = np.random.default_rng(1000 + seed)
        circuit = random_clifford_noise_circuit(rng)
        assert_bit_identical(circuit, shots=33, seed=seed)

    @pytest.mark.parametrize("shots", [1, 7, 8, 9, 64, 200])
    def test_awkward_shot_counts(self, shots):
        circuit = memory_circuit(3, 3, 0.01)
        assert_bit_identical(circuit, shots=shots, seed=5)

    def test_memory_circuit(self):
        assert_bit_identical(memory_circuit(5, 6, 2e-3), shots=300, seed=17)

    def test_transversal_cnot_circuit(self):
        builder = transversal_cnot_experiment(3, 4, 0.004, [1, 2])
        assert_bit_identical(builder.circuit, shots=150, seed=23)

    def test_fused_gate_runs_with_repeats(self):
        # Consecutive same-name gates fuse; repeated targets must reduce
        # by parity (H H = I, S S = Z ~ I in the frame).
        circuit = (
            Circuit()
            .x_error([0, 1, 2], 0.4)
            .h(0, 0, 1)
            .h(2)
            .s(1, 1, 2)
            .cx(0, 1, 1, 2)  # overlapping CX pairs: order matters
            .cz(0, 2, 2, 1)
            .swap(0, 1, 1, 2)
            .measure_x(0, 1, 2)
            .measure(0, 1, 2)
            .detector([0, 3])
            .detector([1, 4])
            .detector([2, 5])
        )
        assert_bit_identical(circuit, shots=64, seed=3)

    def test_duplicate_noise_targets(self):
        # The same qubit twice in one noise op draws two independent hits.
        circuit = (
            Circuit()
            .x_error([0, 0, 1], 0.3)
            .depolarize2([0, 1, 0, 1], 0.3)
            .measure(0, 1)
            .detector([0])
            .detector([1])
        )
        assert_bit_identical(circuit, shots=128, seed=9)

    def test_pauli_channel_duplicate_targets_and_biases(self):
        # Biased channels: duplicate targets draw independently, zero and
        # extreme outcome probabilities behave, packed stays bit-exact.
        circuit = (
            Circuit()
            .pauli_channel_1([0, 0, 1], 0.2, 0.0, 0.5)
            .pauli_channel_2([0, 1, 0, 1], [0.4] + [0.0] * 13 + [0.3])
            .pauli_channel_1([2], 0.0, 0.0, 0.0)
            .h(0, 1, 2)
            .measure_x(0, 1)
            .measure(2)
            .detector([0])
            .detector([1])
            .detector([2])
        )
        assert_bit_identical(circuit, shots=160, seed=21)

    def test_noise_markers_are_dropped(self):
        # IDLE / FENCE are builder-side markers; both samplers skip them.
        circuit = (
            Circuit()
            .idle([0, 1])
            .fence()
            .x_error([0, 1], 0.4)
            .measure(0, 1)
            .detector([0])
            .detector([1])
        )
        program = CompiledProgram(circuit)
        assert all(s[0] not in ("IDLE", "FENCE") for s in program.steps)
        assert_bit_identical(circuit, shots=64, seed=6)

    def test_zero_probability_and_zero_shots(self):
        circuit = memory_circuit(3, 3, 0.0)
        assert_bit_identical(circuit, shots=16, seed=1)
        det_keys, obs_keys = FrameSimulator(circuit).sample_packed(0)
        assert det_keys.shape[0] == 0 and obs_keys.shape[0] == 0

    def test_pauli_and_tick_are_dropped(self):
        circuit = (
            Circuit()
            .append("X", (0,))
            .append("Y", (1,))
            .append("Z", (0,))
            .tick()
            .x_error([0, 1], 0.5)
            .measure(0, 1)
            .detector([0])
            .detector([1])
        )
        program = CompiledProgram(circuit)
        assert all(s[0] not in ("X", "Y", "Z", "TICK") for s in program.steps)
        assert_bit_identical(circuit, shots=40, seed=2)


class TestCompiledProgramStructure:
    def test_gate_fusion_merges_runs(self):
        circuit = Circuit().h(0).h(1).h(2).s(0).s(1).measure(0, 1, 2)
        program = CompiledProgram(circuit)
        kinds = [s[0] for s in program.steps]
        assert kinds == ["H", "S", "M"]
        assert list(program.steps[0][1]) == [0, 1, 2]

    def test_record_map_is_sparse_coo(self):
        circuit = (
            Circuit().x_error([0], 0.5).measure(0, 1).detector([0, 1])
            .observable_include(0, [1])
        )
        program = CompiledProgram(circuit)
        assert list(program._det_meas) == [0, 1]
        assert list(program._det_row) == [0, 0]
        assert list(program._obs_meas) == [1]
        assert list(program._obs_row) == [0]

    def test_forward_record_reference_rejected(self):
        # Deferred detector extraction is only equivalent to the eager
        # reference because forward references cannot be constructed.
        circuit = Circuit().measure(0)
        with pytest.raises(ValueError, match="record"):
            circuit.detector([1])
        with pytest.raises(ValueError, match="record"):
            circuit.observable_include(0, [-1])

    def test_non_clifford_rejected_like_reference(self):
        # The packed path must fail loudly on ops the frame formalism
        # cannot run, exactly like the reference sampler -- never sample
        # silently wrong tables.
        circuit = Circuit().h(0).t(0).measure(0).detector([0])
        with pytest.raises(ValueError, match="cannot run T"):
            FrameSimulator(circuit).sample(8)
        with pytest.raises(ValueError, match="cannot run T"):
            FrameSimulator(circuit).sample_packed(8)
        with pytest.raises(ValueError, match="cannot run CCZ"):
            CompiledProgram(Circuit().ccz(0, 1, 2).measure(0).detector([0]))

    def test_transpose_packed_round_trip(self):
        rng = np.random.default_rng(4)
        bits = (rng.random((13, 29)) < 0.4).astype(np.uint8)
        planes = np.packbits(bits, axis=1)  # (13 rows, 29 items)
        keys = transpose_packed(planes, 29)
        assert keys.shape == (29, 2)
        np.testing.assert_array_equal(
            np.unpackbits(keys, axis=1, count=13), bits.T
        )


class TestTableauCrossCheck:
    """Compiled frame propagation vs an independent stabilizer simulator.

    Build a random Clifford U, run U then U^dagger so all Z measurements
    are deterministically 0, and inject one certain Pauli error between
    them.  The frame sampler's predicted measurement flips (one detector
    per record) must equal the records the tableau simulator actually
    produces for the same faulted circuit.
    """

    @staticmethod
    def _random_unitary(rng: np.random.Generator, qubits: int, depth: int):
        ops = []
        for _ in range(depth):
            kind = int(rng.integers(0, 5))
            q = int(rng.integers(0, qubits))
            a, b = (int(x) for x in rng.choice(qubits, size=2, replace=False))
            if kind == 0:
                ops.append(("H", (q,)))
            elif kind == 1:
                ops.append(("S", (q,)))
            elif kind == 2:
                ops.append(("CX", (a, b)))
            elif kind == 3:
                ops.append(("CZ", (a, b)))
            else:
                ops.append(("SWAP", (a, b)))
        return ops

    @staticmethod
    def _inverse(ops):
        inverse = []
        for name, targets in reversed(ops):
            inverse.append(("S_DAG" if name == "S" else name, targets))
        return inverse

    @pytest.mark.parametrize("seed", range(8))
    def test_injected_pauli_flips_match_tableau(self, seed):
        rng = np.random.default_rng(300 + seed)
        qubits = 4
        ops = self._random_unitary(rng, qubits, depth=12)
        error_name = ("X_ERROR", "Z_ERROR", "Y_ERROR")[seed % 3]
        pauli = {"X_ERROR": "X", "Z_ERROR": "Z", "Y_ERROR": "Y"}[error_name]
        error_qubit = int(rng.integers(0, qubits))

        # Frame circuit: U, certain error, U^dagger, measure all.
        frame_circuit = Circuit()
        for name, targets in ops:
            frame_circuit.append(name, targets)
        frame_circuit.append(error_name, (error_qubit,), 1.0)
        for name, targets in self._inverse(ops):
            frame_circuit.append(name, targets)
        frame_circuit.measure(*range(qubits))
        for q in range(qubits):
            frame_circuit.detector([q])

        det_keys, _ = FrameSimulator(frame_circuit).sample_packed(8)
        flips = np.unpackbits(det_keys, axis=1, count=qubits)
        assert (flips == flips[0]).all()  # p=1 error: every shot identical

        # Tableau circuit: same structure with the error as a hard gate.
        tableau = TableauSimulator(qubits)
        tableau_circuit = Circuit()
        for name, targets in ops:
            tableau_circuit.append(name, targets)
        tableau_circuit.append(pauli, (error_qubit,))
        for name, targets in self._inverse(ops):
            tableau_circuit.append(name, targets)
        tableau_circuit.measure(*range(qubits))
        tableau.run(tableau_circuit)
        # U^dagger U |0> = |0>: records are exactly the injected flips.
        np.testing.assert_array_equal(np.array(tableau.record), flips[0])
