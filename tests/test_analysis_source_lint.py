"""AST source lint: the repo is clean, and planted defects are caught."""

import textwrap

from repro.analysis.source_lint import lint_file, lint_source, source_root


def _lint_snippet(tmp_path, code, **kwargs):
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(code))
    return lint_file(path, **kwargs)


class TestRepoSources:
    def test_repo_sources_have_no_errors(self):
        report = lint_source()
        assert report.ok("error"), report.render()

    def test_known_unseeded_default_rng_fallbacks_warn(self):
        # The simulators' rng=None fallbacks are deliberate; the lint
        # keeps them visible as warnings without gating on them.
        report = lint_source()
        files = {d.target for d in report.warnings}
        assert any(f.endswith("sim/frame.py") for f in files)

    def test_source_root_is_the_package(self):
        assert (source_root() / "__init__.py").exists()
        assert source_root().name == "repro"


class TestGlobalRngRule:
    def test_np_random_seed_is_an_error(self, tmp_path):
        diags = _lint_snippet(tmp_path, """
            import numpy as np
            def f():
                np.random.seed(1)
                return np.random.randint(10)
        """)
        assert [d.severity for d in diags] == ["error", "error"]
        assert "np.random.seed" in diags[0].message

    def test_numpy_alias_is_resolved(self, tmp_path):
        diags = _lint_snippet(tmp_path, """
            import numpy
            def f():
                return numpy.random.shuffle([1, 2])
        """)
        assert [d.severity for d in diags] == ["error"]

    def test_from_import_of_global_rng_function(self, tmp_path):
        diags = _lint_snippet(tmp_path, """
            from numpy.random import randint
        """)
        assert [d.severity for d in diags] == ["error"]
        assert "numpy.random.randint" in diags[0].message

    def test_argless_default_rng_is_a_warning(self, tmp_path):
        diags = _lint_snippet(tmp_path, """
            import numpy as np
            def f(rng=None):
                return rng or np.random.default_rng()
        """)
        assert [d.severity for d in diags] == ["warning"]

    def test_seeded_apis_are_clean(self, tmp_path):
        diags = _lint_snippet(tmp_path, """
            import numpy as np
            def f(seed):
                rng = np.random.default_rng(seed)
                ss = np.random.SeedSequence(seed)
                return rng, ss.spawn(2)
        """)
        assert diags == []

    def test_unrelated_random_attribute_is_clean(self, tmp_path):
        # Someone's own object with a .random.seed chain isn't numpy.
        diags = _lint_snippet(tmp_path, """
            def f(sim):
                sim.random.seed(3)
        """)
        assert diags == []


POOL_PREAMBLE = textwrap.dedent("""
    from multiprocessing import Pool
    _WORKER = {}
    _CACHE = {}
    def _init(payload):
        _WORKER["payload"] = payload
    def run(items, payload):
        with Pool(2, initializer=_init, initargs=(payload,)) as pool:
            return pool.map(_shard, items)
""")


class TestWorkerStateRule:
    def test_worker_writing_module_state_is_an_error(self, tmp_path):
        diags = _lint_snippet(tmp_path, POOL_PREAMBLE + textwrap.dedent("""
            def _shard(item):
                _CACHE[item] = item * 2
                return _CACHE[item]
        """))
        assert [d.severity for d in diags] == ["error"]
        assert "_CACHE" in diags[0].message

    def test_global_rebind_in_worker_is_an_error(self, tmp_path):
        diags = _lint_snippet(tmp_path, POOL_PREAMBLE + textwrap.dedent("""
            def _shard(item):
                global _CACHE
                _CACHE = {}
                return item
        """))
        assert any("rebinds module global" in d.message for d in diags)

    def test_worker_dict_is_allowed(self, tmp_path):
        diags = _lint_snippet(tmp_path, POOL_PREAMBLE + textwrap.dedent("""
            def _shard(item):
                return _WORKER["payload"][item]
        """))
        assert diags == []

    def test_initializer_itself_may_write_worker_dict(self, tmp_path):
        # _init assigns into _WORKER; that is the sanctioned idiom.
        diags = _lint_snippet(tmp_path, POOL_PREAMBLE + textwrap.dedent("""
            def _shard(item):
                return item
        """))
        assert diags == []

    def test_custom_worker_state_allowlist(self, tmp_path):
        code = POOL_PREAMBLE + textwrap.dedent("""
            def _shard(item):
                _CACHE[item] = item
                return item
        """)
        assert _lint_snippet(tmp_path, code, worker_state=("_WORKER", "_CACHE")) == []

    def test_non_worker_functions_may_write_module_state(self, tmp_path):
        diags = _lint_snippet(tmp_path, """
            _CACHE = {}
            def remember(k, v):
                _CACHE[k] = v
        """)
        assert diags == []


class TestPrintBan:
    def test_bare_print_is_an_error(self, tmp_path):
        diags = _lint_snippet(tmp_path, """
            def report(x):
                print(x)
        """)
        assert [d.severity for d in diags] == ["error"]
        assert "repro.obs.echo" in diags[0].message

    def test_main_entry_point_is_exempt(self, tmp_path):
        path = tmp_path / "__main__.py"
        path.write_text("print('usage: ...')\n")
        assert lint_file(path) == []

    def test_echo_and_logging_are_clean(self, tmp_path):
        diags = _lint_snippet(tmp_path, """
            from repro.obs import echo, get_logger
            def report(x):
                echo(str(x))
                get_logger(__name__).debug("detail %s", x)
        """)
        assert diags == []

    def test_method_named_print_is_clean(self, tmp_path):
        # Only the builtin: attribute calls like device.print() pass.
        diags = _lint_snippet(tmp_path, """
            def flush(device):
                device.print()
        """)
        assert diags == []


class TestLintFile:
    def test_syntax_error_becomes_a_diagnostic(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        diags = lint_file(path)
        assert [d.severity for d in diags] == ["error"]
        assert "syntax error" in diags[0].message

    def test_diagnostics_carry_the_file_as_target(self, tmp_path):
        diags = _lint_snippet(tmp_path, """
            import numpy as np
            np.random.seed(0)
        """)
        assert diags[0].target.endswith("snippet.py")
        assert "line 3:" in diags[0].message

    def test_lint_source_accepts_explicit_paths(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        report = lint_source([clean])
        assert len(report) == 0
