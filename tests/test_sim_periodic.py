"""Property tests for the periodic round-compiler and periodic DEM path.

The hard invariant: everything the periodic path produces must be
*bit-identical* to the linear compiler per seed -- the replayed round
body with fused RNG draws yields the same packed planes, and the
periodically-unrolled DEM equals the linear extraction mechanism for
mechanism (exact floats, post-``merged()``).  Fallback circuits (random
Clifford soups, transversal gadgets, single-round experiments) must land
on the linear compiler unchanged.
"""

import numpy as np
import pytest

from test_sim_compiled import random_clifford_noise_circuit

from repro.core.cache import cache_stats, clear_caches
from repro.noise.dem import extract_dem
from repro.sim import periodic as periodic_module
from repro.sim.circuit import Circuit
from repro.sim.compiled import CompiledProgram
from repro.sim.frame import FrameSimulator
from repro.sim.memory import memory_circuit, transversal_cnot_experiment
from repro.sim.periodic import (
    PeriodicProgram,
    circuit_fingerprint,
    compile_program,
    detect_period,
)

NOISE_MODELS = (None, "biased_pauli", "movement_aware")

CACHE_KEY = "repro.sim.periodic.compile_program"


def build_memory(distance, rounds, noise, basis="Z", p=1e-3):
    kwargs = {"basis": basis}
    if noise is not None:
        kwargs["noise"] = noise
    return memory_circuit(distance, rounds, p, **kwargs)


def assert_periodic_matches_linear(circuit, shots_list=(0, 1, 7, 64, 200)):
    """Forced-periodic and forced-linear programs agree bit for bit."""
    spec = detect_period(circuit)
    assert spec is not None, "expected a detectable period"
    linear = CompiledProgram(circuit)
    periodic = PeriodicProgram(circuit, spec)
    for shots in shots_list:
        for seed in (0, 1234):
            det_lin, obs_lin = linear.run_packed(shots, np.random.default_rng(seed))
            det_per, obs_per = periodic.run_packed(shots, np.random.default_rng(seed))
            np.testing.assert_array_equal(det_lin, det_per)
            np.testing.assert_array_equal(obs_lin, obs_per)


class TestPeriodDetection:
    def test_memory_circuit_spec(self):
        # Round 1 emits only the memory-basis detectors, so it belongs to
        # the prologue: the body covers rounds 2..r.
        circuit = build_memory(3, 6, None)
        spec = detect_period(circuit)
        assert spec is not None
        assert spec.reps == 5
        assert spec.meas_per_rep == 8  # one measurement per ancilla
        assert spec.det_per_rep == 8  # full detector layer per round
        assert spec.meas_start == 8
        assert spec.det_start == 4  # round 1: memory-basis detectors only
        assert spec.savings == (spec.reps - 1) * spec.length

    @pytest.mark.parametrize("noise", NOISE_MODELS)
    def test_all_noise_models_detect_same_geometry(self, noise):
        spec = detect_period(build_memory(3, 5, noise))
        assert spec is not None
        assert (spec.reps, spec.meas_per_rep, spec.det_per_rep) == (4, 8, 8)

    def test_single_round_has_no_period(self):
        assert detect_period(build_memory(3, 1, None)) is None

    def test_aperiodic_circuit_has_no_period(self):
        circuit = (
            Circuit().reset(0, 1).h(0).cx(0, 1).s(1).measure(0, 1)
        )
        assert detect_period(circuit) is None

    def test_compile_modes(self):
        circuit = build_memory(3, 6, None)
        assert isinstance(compile_program(circuit, mode="auto"), PeriodicProgram)
        assert isinstance(compile_program(circuit, mode="linear"), CompiledProgram)
        assert isinstance(
            compile_program(circuit, mode="periodic"), PeriodicProgram
        )
        with pytest.raises(ValueError, match="unknown compile mode"):
            compile_program(circuit, mode="eager")

    def test_periodic_mode_raises_without_period(self):
        circuit = Circuit().reset(0).h(0).measure(0)
        with pytest.raises(ValueError, match="repeated round"):
            compile_program(circuit, mode="periodic")
        assert isinstance(compile_program(circuit, mode="auto"), CompiledProgram)

    def test_random_circuits_fall_back_or_stay_identical(self):
        # Random soups usually have no period; when a small one is found
        # anyway, the periodic program must still be bit-identical.
        rng = np.random.default_rng(7)
        fallbacks = 0
        for _ in range(10):
            circuit = random_clifford_noise_circuit(rng)
            if detect_period(circuit) is None:
                fallbacks += 1
                assert isinstance(
                    compile_program(circuit, mode="auto"), CompiledProgram
                )
            else:
                assert_periodic_matches_linear(circuit, shots_list=(13, 64))
        assert fallbacks > 0

    def test_transversal_gadget_compiles_consistently(self):
        # Mid-circuit transversal CNOTs break the uniform round; whether a
        # (shorter) period survives or not, the compiled output must match.
        circuit = transversal_cnot_experiment(3, 4, 1e-3, [2]).circuit
        if detect_period(circuit) is None:
            assert isinstance(
                compile_program(circuit, mode="auto"), CompiledProgram
            )
        else:
            assert_periodic_matches_linear(circuit, shots_list=(64,))


class TestBitIdentity:
    """sample_packed() via the periodic path == linear == reference."""

    @pytest.mark.parametrize("noise", NOISE_MODELS)
    @pytest.mark.parametrize(
        "distance,rounds,basis",
        [
            (3, 1, "Z"),
            (3, 2, "X"),
            (3, 3, "Z"),
            (3, 9, "X"),
            (5, 1, "X"),
            (5, 2, "Z"),
            (5, 5, "X"),
            (5, 15, "Z"),
        ],
    )
    def test_memory_matrix(self, distance, rounds, basis, noise):
        circuit = build_memory(distance, rounds, noise, basis=basis)
        if detect_period(circuit) is not None:
            assert_periodic_matches_linear(circuit, shots_list=(0, 1, 64, 200))
        # End-to-end through the auto path vs the byte-per-bit oracle.
        sim = FrameSimulator(circuit)
        det_ref, obs_ref = sim.sample(40, rng=np.random.default_rng(99))
        det_keys, obs_keys = sim.sample_packed(40, rng=np.random.default_rng(99))
        det = np.unpackbits(det_keys, axis=1, count=circuit.num_detectors)
        obs = np.unpackbits(obs_keys, axis=1, count=circuit.num_observables)
        np.testing.assert_array_equal(det_ref, det)
        np.testing.assert_array_equal(obs_ref, obs)

    @pytest.mark.slow
    @pytest.mark.parametrize("noise", NOISE_MODELS)
    @pytest.mark.parametrize("rounds", [2, 7, 21])
    def test_memory_d7(self, rounds, noise):
        circuit = build_memory(7, rounds, noise)
        if detect_period(circuit) is not None:
            assert_periodic_matches_linear(circuit, shots_list=(64, 1000))

    def test_chunked_draws_stay_bit_identical(self, monkeypatch):
        # A tiny chunk bound forces one fused dispatch per replay (and
        # exercises the buffer-reload boundaries); the stream contract
        # must hold regardless of chunking.
        monkeypatch.setattr(periodic_module, "DRAW_CHUNK_DOUBLES", 1)
        assert_periodic_matches_linear(
            build_memory(3, 8, "movement_aware"), shots_list=(64,)
        )

    def test_zero_probability_noise(self):
        circuit = build_memory(3, 6, None, p=0.0)
        if detect_period(circuit) is not None:
            assert_periodic_matches_linear(circuit, shots_list=(64,))


class TestPeriodicDem:
    """Periodic extract_dem == linear extract_dem, mechanism for mechanism."""

    @pytest.mark.parametrize("noise", NOISE_MODELS)
    @pytest.mark.parametrize("distance,rounds", [(3, 6), (3, 9), (5, 10)])
    def test_exact_equality(self, distance, rounds, noise):
        circuit = build_memory(distance, rounds, noise)
        linear = extract_dem(circuit, method="linear")
        periodic = extract_dem(circuit, method="periodic", verify=True)
        assert linear.num_detectors == periodic.num_detectors
        assert linear.num_observables == periodic.num_observables
        # Post-merged() models are sorted, so == is mechanism-for-mechanism
        # equality including exact probability floats.
        assert linear.mechanisms == periodic.mechanisms

    def test_auto_uses_periodic_and_matches(self):
        circuit = build_memory(3, 8, "biased_pauli")
        auto = extract_dem(circuit)
        linear = extract_dem(circuit, method="linear")
        assert auto.mechanisms == linear.mechanisms

    def test_few_rounds_fall_back(self):
        circuit = build_memory(3, 3, None)
        with pytest.raises(ValueError, match="periodic"):
            extract_dem(circuit, method="periodic")
        auto = extract_dem(circuit)
        linear = extract_dem(circuit, method="linear")
        assert auto.mechanisms == linear.mechanisms

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="extraction method"):
            extract_dem(build_memory(3, 3, None), method="fast")

    @pytest.mark.slow
    @pytest.mark.parametrize("noise", NOISE_MODELS)
    def test_exact_equality_d7(self, noise):
        circuit = build_memory(7, 8, noise)
        linear = extract_dem(circuit, method="linear")
        periodic = extract_dem(circuit, method="periodic", verify=True)
        assert linear.mechanisms == periodic.mechanisms


class TestProgramCache:
    def test_fingerprint_is_content_keyed(self):
        a = build_memory(3, 4, None)
        b = build_memory(3, 4, None)
        c = build_memory(3, 5, None)
        assert circuit_fingerprint(a) == circuit_fingerprint(b)
        assert circuit_fingerprint(a) != circuit_fingerprint(c)

    def test_equal_circuits_share_programs(self):
        clear_caches()
        first = compile_program(build_memory(3, 6, None))
        hits, misses, size = cache_stats()[CACHE_KEY]
        assert (hits, misses, size) == (0, 1, 1)
        second = compile_program(build_memory(3, 6, None))
        assert second is first
        hits, misses, size = cache_stats()[CACHE_KEY]
        assert (hits, misses, size) == (1, 1, 1)

    def test_simulators_share_compiled_programs(self):
        clear_caches()
        circuit = build_memory(3, 6, "biased_pauli")
        sim_a = FrameSimulator(circuit)
        sim_b = FrameSimulator(build_memory(3, 6, "biased_pauli"))
        assert sim_a.compiled is sim_b.compiled
        hits, _, _ = cache_stats()[CACHE_KEY]
        assert hits >= 1

    def test_clear_caches_empties_program_cache(self):
        compile_program(build_memory(3, 4, None))
        assert cache_stats()[CACHE_KEY][2] >= 1
        clear_caches()
        assert cache_stats()[CACHE_KEY] == (0, 0, 0)


class TestDemPeriodicityPass:
    def test_clean_memory_dem_passes(self):
        from repro.analysis import verify

        report = verify(
            build_memory(3, 8, None), passes=["dem_periodicity"], fail_on=None
        )
        assert not report.errors

    def test_too_few_rounds_is_info_skip(self):
        from repro.analysis import verify

        report = verify(
            build_memory(3, 3, None), passes=["dem_periodicity"], fail_on=None
        )
        severities = [d.severity for d in report.diagnostics]
        assert severities == ["info"]

    def test_off_by_one_rebase_is_flagged(self):
        from repro.analysis import check_dem_periodicity
        from repro.noise.dem import DetectorErrorModel, ErrorMechanism

        circuit = build_memory(3, 8, None)
        spec = detect_period(circuit)
        dem = extract_dem(circuit)
        corrupted = []
        target_row = spec.det_start + 3 * spec.det_per_rep
        for mech in dem.mechanisms:
            if mech.detectors and mech.detectors[0] == target_row:
                corrupted.append(ErrorMechanism(
                    mech.probability,
                    tuple(d + 1 for d in mech.detectors),
                    mech.observables,
                ))
            else:
                corrupted.append(mech)
        diags = check_dem_periodicity(
            DetectorErrorModel(corrupted, dem.num_detectors, dem.num_observables),
            prologue_detectors=spec.det_start,
            detectors_per_round=spec.det_per_rep,
            rounds=spec.reps,
        )
        assert any(d.severity == "error" for d in diags)

    def test_uncorrupted_blocks_pass_direct_check(self):
        from repro.analysis import check_dem_periodicity

        circuit = build_memory(3, 8, "movement_aware")
        spec = detect_period(circuit)
        diags = check_dem_periodicity(
            extract_dem(circuit),
            prologue_detectors=spec.det_start,
            detectors_per_round=spec.det_per_rep,
            rounds=spec.reps,
        )
        assert diags == []


class TestEngineIntegration:
    def test_engine_periodic_matches_linear_results(self):
        from repro.decoder.engine import DecodingEngine

        circuit = build_memory(3, 6, None)
        with DecodingEngine(circuit, "mwpm", compile_mode="periodic") as periodic:
            result_periodic = periodic.run(600, seed=5)
        with DecodingEngine(circuit, "mwpm", compile_mode="linear") as linear:
            result_linear = linear.run(600, seed=5)
        assert result_periodic == result_linear
        assert isinstance(periodic._sim.compiled, PeriodicProgram)
        assert isinstance(linear._sim.compiled, CompiledProgram)

    def test_run_until_reuses_cached_program(self):
        from repro.decoder.engine import DecodingEngine

        clear_caches()
        circuit = build_memory(3, 5, None)
        with DecodingEngine(circuit, "mwpm") as engine:
            engine.run(200, seed=1)
            engine.run(200, seed=2)
        _, misses, _ = cache_stats()[CACHE_KEY]
        assert misses == 1
