"""Circuit-IR verifier: one seeded defect per diagnostics pass.

Each test plants a defect only the targeted pass can see (bypassing
``Circuit.append`` validation by mutating ``circuit.operations``
directly where needed) and checks the pass reports it -- and that clean
builder output reports nothing.  Driver semantics (``fail_on``
thresholds, unknown pass names, full-report exceptions), the verified
extraction entry points, and the builders' ``strict`` flag are covered
at the bottom.
"""

import pytest

import repro.decoder.engine as engine_mod
from repro.analysis import (
    STRUCTURAL_PASSES,
    Diagnostic,
    DiagnosticReport,
    VerificationError,
    available_passes,
    check_graph,
    get_pass,
    verify,
    verify_dem,
    verify_graph,
)
from repro.analysis.passes import PassContext
from repro.decoder.graph import BOUNDARY, DecodingGraph
from repro.noise.dem import DetectorErrorModel, ErrorMechanism, extract_dem
from repro.sim.circuit import Circuit, Operation
from repro.sim.memory import memory_circuit, transversal_cnot_circuit


def structural_errors(circuit, **kwargs):
    """Names of structural passes reporting error-severity findings."""
    report = verify(circuit, passes=STRUCTURAL_PASSES, fail_on=None, **kwargs)
    return report.pass_names("error")


class TestCleanCircuits:
    def test_memory_circuit_is_diagnostic_error_free(self):
        report = verify(memory_circuit(3, 2, 1e-3), fail_on="error",
                        expect_clean=False)
        assert report.ok("error")

    def test_transversal_cnot_circuit_is_error_free(self):
        report = verify(
            transversal_cnot_circuit(3, 4, 1e-3, (2,)),
            fail_on="error", expect_clean=False,
        )
        assert report.ok("error")

    def test_registry_is_complete(self):
        names = available_passes()
        assert set(STRUCTURAL_PASSES) < set(names)
        assert "dem_consistency" in available_passes(scope="circuit")
        assert "registry_contract" in available_passes(scope="global")


class TestRecordDataflow:
    def test_out_of_range_record_reference(self):
        c = Circuit().reset(0).measure(0).detector([0])
        # Bypass append()'s validation: a DETECTOR over a record that
        # will never exist.
        c.operations.append(Operation("DETECTOR", (7,)))
        assert structural_errors(c) == ("record_dataflow",)

    def test_negative_record_reference(self):
        c = Circuit().reset(0).measure(0)
        c.operations.append(Operation("OBSERVABLE_INCLUDE", (-1,)))
        assert "record_dataflow" in structural_errors(c)

    def test_unused_records_warn_not_error(self):
        c = Circuit().reset(0, 1).measure(0, 1).detector([0])
        report = verify(c, passes=["record_dataflow"], fail_on=None)
        assert report.ok("error")
        assert any("never" in d.message for d in report.warnings)

    def test_empty_record_list_warns(self):
        c = Circuit().reset(0).measure(0).detector([])
        report = verify(c, passes=["record_dataflow"], fail_on=None)
        assert any("empty record list" in d.message for d in report.warnings)


class TestQubitLiveness:
    def test_two_qubit_gate_pairing_qubit_with_itself(self):
        c = Circuit().reset(0).cx(0, 0).measure(0)
        assert structural_errors(c) == ("qubit_liveness",)

    def test_ccz_triple_with_repeat(self):
        c = Circuit().reset(0, 1)
        c.operations.append(Operation("CCZ", (0, 1, 1)))
        c.measure(0, 1)
        assert structural_errors(c) == ("qubit_liveness",)

    def test_gate_on_never_reset_qubit_warns(self):
        c = Circuit().h(0).measure(0)
        report = verify(c, passes=["qubit_liveness"], fail_on=None)
        assert report.ok("error")
        assert any("before any reset" in d.message for d in report.warnings)

    def test_reset_then_gate_is_silent(self):
        c = Circuit().reset(0, 1).cx(0, 1).measure(0, 1)
        report = verify(c, passes=["qubit_liveness"], fail_on=None)
        assert len(report) == 0


class TestNoisePlacement:
    def test_leftover_marker_after_noise_transform(self):
        c = Circuit().reset(0).idle([0]).depolarize1([0], 1e-3).measure(0)
        assert structural_errors(c, expect_clean=False) == ("noise_placement",)

    def test_channel_in_clean_builder_circuit(self):
        c = Circuit().reset(0).depolarize1([0], 1e-3).measure(0)
        assert structural_errors(c, expect_clean=True) == ("noise_placement",)

    def test_unknown_stage_flags_only_coexistence(self):
        # Markers alone (a clean circuit nobody transformed yet): fine.
        markers_only = Circuit().reset(0).idle([0]).measure(0)
        assert structural_errors(markers_only) == ()
        # Markers next to channels: some transform half-ran.
        mixed = Circuit().reset(0).idle([0]).x_error([0], 1e-3).measure(0)
        assert structural_errors(mixed) == ("noise_placement",)

    def test_zero_probability_channel_warns(self):
        c = Circuit().reset(0).x_error([0], 0.0).measure(0)
        report = verify(c, passes=["noise_placement"], fail_on=None,
                        expect_clean=False)
        assert report.ok("error")
        assert any("zero probability" in d.message for d in report.warnings)


class TestTimingOverlap:
    def test_same_qubit_twice_between_ticks(self):
        c = Circuit().reset(0, 1).tick().h(0).cx(0, 1).tick().measure(0, 1)
        report = verify(c, passes=["timing_overlap"], fail_on=None)
        assert [d.pass_name for d in report.at_least("warning")] == ["timing_overlap"]
        assert "qubit 0" in report.diagnostics[0].message

    def test_silent_without_any_tick(self):
        c = Circuit().reset(0).h(0).h(0).measure(0)
        report = verify(c, passes=["timing_overlap"], fail_on=None)
        assert len(report) == 0


class TestDemConsistency:
    def test_detector_no_mechanism_can_fire(self):
        # Noise only on qubit 0; the detector over qubit 1's measurement
        # is structurally fine but nothing can ever flip it.
        c = (
            Circuit().reset(0, 1).depolarize1([0], 1e-3)
            .measure(0, 1).detector([0]).detector([1])
        )
        assert structural_errors(c, expect_clean=False) == ()
        report = verify(c, passes=["dem_consistency"], fail_on=None,
                        expect_clean=False)
        assert report.pass_names("error") == ("dem_consistency",)
        assert any("covered by no error mechanism" in d.message
                   for d in report.errors)

    def test_clean_memory_dem_is_consistent(self):
        report = verify(memory_circuit(3, 2, 1e-3),
                        passes=["dem_consistency"], fail_on=None)
        assert report.ok("error")


class TestRegistryContract:
    def test_clean_registries_have_no_errors(self):
        report = verify(Circuit(), passes=["registry_contract"], fail_on=None)
        assert report.ok("error"), report.render()

    def test_broken_decoder_registration_is_caught(self, monkeypatch):
        def bad_factory(dem):  # wrong signature: no detector_meta/basis
            raise AssertionError("unreachable")

        monkeypatch.setitem(engine_mod._REGISTRY, "zz_broken", bad_factory)
        report = verify(Circuit(), passes=["registry_contract"], fail_on=None)
        assert any("'zz_broken'" in d.message for d in report.errors)

    def test_non_protocol_decoder_is_caught(self, monkeypatch):
        monkeypatch.setitem(
            engine_mod._REGISTRY,
            "zz_not_a_decoder",
            lambda dem, *, detector_meta=None, basis="Z": object(),
        )
        report = verify(Circuit(), passes=["registry_contract"], fail_on=None)
        assert any(
            "'zz_not_a_decoder'" in d.message and "protocol" in d.message
            for d in report.errors
        )


class TestVerifyDriver:
    def test_unknown_pass_name_raises_before_running(self):
        with pytest.raises(ValueError, match="unknown verification pass"):
            verify(Circuit(), passes=["nonesuch"])

    def test_unknown_fail_on_raises(self):
        with pytest.raises(ValueError, match="unknown severity"):
            verify(Circuit(), fail_on="fatal")

    def test_fail_on_none_never_raises(self):
        c = Circuit().reset(0).cx(0, 0).measure(0)
        report = verify(c, passes=STRUCTURAL_PASSES, fail_on=None)
        assert not report.ok("error")

    def test_fail_on_error_raises_with_full_report(self):
        c = Circuit().reset(0).cx(0, 0).measure(0)
        # Two independent defects; the exception must carry both.
        c.operations.append(Operation("DETECTOR", (9,)))
        with pytest.raises(VerificationError) as exc:
            verify(c, passes=STRUCTURAL_PASSES)
        report = exc.value.report
        assert set(report.pass_names("error")) == {
            "qubit_liveness", "record_dataflow",
        }
        assert "pairs qubit 0 with itself" in str(exc.value)

    def test_fail_on_warning_gates_warnings(self):
        c = Circuit().h(0).measure(0)  # never-reset qubit: warning
        verify(c, passes=["qubit_liveness"], fail_on="error")
        with pytest.raises(VerificationError):
            verify(c, passes=["qubit_liveness"], fail_on="warning")

    def test_report_filters(self):
        report = DiagnosticReport((
            Diagnostic("info", "a", "i"),
            Diagnostic("warning", "a", "w"),
            Diagnostic("error", "b", "e"),
        ))
        assert len(report.at_least("info")) == 3
        assert report.pass_names("warning") == ("a", "b")
        assert [d.message for d in report.by_pass("a")] == ["i", "w"]
        assert not report.ok("warning") and not report.ok("error")

    def test_diagnostic_render_includes_location(self):
        d = Diagnostic("error", "p", "msg", op_index=4, target="fig:lbl")
        assert d.render() == "fig:lbl: error[p] op 4: msg"
        with pytest.raises(ValueError, match="unknown severity"):
            Diagnostic("bogus", "p", "msg")


class TestVerifiedEntryPoints:
    def test_extract_dem_verify_passes_on_clean_circuit(self):
        dem = extract_dem(memory_circuit(3, 2, 1e-3), verify=True)
        assert dem.mechanisms

    def test_verify_dem_rejects_uncovered_detector(self):
        dem = DetectorErrorModel(
            [ErrorMechanism(0.1, (0,), ())], num_detectors=2, num_observables=0
        )
        with pytest.raises(VerificationError, match="covered by no"):
            verify_dem(dem)

    def test_verify_dem_rejects_out_of_range_detector(self):
        dem = DetectorErrorModel(
            [ErrorMechanism(0.1, (0, 5), ())], num_detectors=2,
            num_observables=0,
        )
        with pytest.raises(VerificationError, match="outside"):
            verify_dem(dem)

    def test_verify_dem_warns_on_observable_only_mechanism(self):
        dem = DetectorErrorModel(
            [ErrorMechanism(0.1, (0,), ()), ErrorMechanism(1e-4, (), (0,))],
            num_detectors=1, num_observables=1,
        )
        report = verify_dem(dem, fail_on=None)
        assert report.ok("error")
        assert any("undetectable logical" in d.message for d in report.warnings)

    def test_from_dem_verify_passes_on_clean_circuit(self):
        dem = extract_dem(memory_circuit(3, 2, 1e-3))
        graph = DecodingGraph.from_dem(dem, verify=True)
        assert graph.edges

    def test_verify_graph_rejects_isolated_detector(self):
        graph = DecodingGraph(2, 0)
        graph.add_mechanism((0,), 0.01, frozenset())
        with pytest.raises(VerificationError, match="isolated"):
            verify_graph(graph)

    def test_check_graph_warns_on_boundaryless_component(self):
        graph = DecodingGraph(2, 0)
        graph.add_mechanism((0, 1), 0.01, frozenset())
        diags = check_graph(graph)
        assert [d.severity for d in diags] == ["warning"]
        assert "cannot reach the boundary" in diags[0].message

    def test_pass_context_caches_dem(self):
        ctx = PassContext(memory_circuit(3, 2, 1e-3))
        assert ctx.dem() is ctx.dem()
        assert ctx.graph() is ctx.graph()


class _MarkerLeavingNoise:
    """A broken noise model: claims to transform but leaves markers."""

    def apply(self, circuit):
        return circuit


class TestStrictBuilders:
    def test_strict_build_rejects_marker_leaving_noise_model(self):
        with pytest.raises(VerificationError, match="leftover"):
            memory_circuit(3, 2, 1e-3, noise=_MarkerLeavingNoise(), strict=True)

    def test_non_strict_build_accepts_it(self):
        circuit = memory_circuit(
            3, 2, 1e-3, noise=_MarkerLeavingNoise(), strict=False
        )
        assert any(op.name == "IDLE" for op in circuit.operations)

    def test_env_var_sets_the_default(self, monkeypatch):
        # conftest sets REPRO_STRICT=1 for the suite: default is strict.
        monkeypatch.setenv("REPRO_STRICT", "1")
        with pytest.raises(VerificationError):
            memory_circuit(3, 2, 1e-3, noise=_MarkerLeavingNoise())
        monkeypatch.setenv("REPRO_STRICT", "0")
        memory_circuit(3, 2, 1e-3, noise=_MarkerLeavingNoise())

    def test_strict_build_of_real_models_is_clean(self):
        # The shipped noise models must all survive strict verification.
        for noise in (None, "biased_pauli", "movement_aware"):
            memory_circuit(3, 2, 1e-3, noise=noise, strict=True)
