"""Tests for timing model, volume accounting and idle-SE optimization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import idle
from repro.core.params import ErrorParams, PhysicalParams
from repro.core.timing import TimingModel
from repro.core.volume import ResourceEstimate, SpaceTime, VolumeLedger, peak_footprint

PHYS = PhysicalParams()
ERR = ErrorParams()


class TestTimingModel:
    def test_se_active_time_is_about_400us(self):
        # Paper Sec. IV.2: "gates in a QEC cycle taking around 400 us".
        tm = TimingModel()
        active = 4 * (tm.se_move_time + PHYS.gate_time)
        assert active == pytest.approx(400e-6, rel=0.1)

    def test_se_round_pipelined_against_measurement(self):
        tm = TimingModel()
        assert tm.se_round_time == pytest.approx(500e-6, rel=0.01)

    def test_logical_gate_time_d27_about_1ms(self):
        tm = TimingModel()
        t = tm.logical_gate_time(27)
        assert 0.8e-3 < t < 1.2e-3

    def test_reaction_limited_step(self):
        tm = TimingModel()
        assert tm.reaction_limited_step(27) >= tm.reaction_time

    def test_faster_acceleration_shortens_gate(self):
        fast = TimingModel(PHYS.rescaled(acceleration=4 * 5500.0))
        slow = TimingModel()
        assert fast.logical_gate_time(27) <= slow.logical_gate_time(27)

    def test_storage_round_equals_se_round(self):
        tm = TimingModel()
        assert tm.storage_round_time() == tm.se_round_time


class TestSpaceTime:
    def test_volume(self):
        assert SpaceTime(100.0, 2.0).volume == pytest.approx(200.0)

    def test_scaled_multiplies_qubits(self):
        st_block = SpaceTime(10.0, 3.0).scaled(4)
        assert st_block.qubits == 40.0
        assert st_block.seconds == 3.0

    def test_repeated_multiplies_time(self):
        st_block = SpaceTime(10.0, 3.0).repeated(5)
        assert st_block.seconds == 15.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SpaceTime(-1.0, 1.0)

    @given(st.floats(min_value=0, max_value=1e9), st.floats(min_value=0, max_value=1e6))
    def test_volume_nonnegative(self, q, t):
        assert SpaceTime(q, t).volume >= 0


class TestVolumeLedger:
    def test_accumulates_per_component(self):
        ledger = VolumeLedger()
        ledger.add("storage", SpaceTime(100, 1))
        ledger.add("storage", SpaceTime(100, 2))
        ledger.add("factories", SpaceTime(50, 1))
        assert ledger.entries["storage"] == pytest.approx(300)
        assert ledger.total == pytest.approx(350)

    def test_fractions_sum_to_one(self):
        ledger = VolumeLedger()
        ledger.add_volume("a", 30)
        ledger.add_volume("b", 70)
        fracs = ledger.fractions()
        assert sum(fracs.values()) == pytest.approx(1.0)
        assert fracs["b"] == pytest.approx(0.7)

    def test_empty_fractions(self):
        assert VolumeLedger().fractions() == {}

    def test_merged(self):
        a = VolumeLedger({"x": 1.0})
        b = VolumeLedger({"x": 2.0, "y": 3.0})
        merged = a.merged(b)
        assert merged.entries == {"x": 3.0, "y": 3.0}
        assert a.entries == {"x": 1.0}  # original untouched

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            VolumeLedger().add_volume("a", -1)


class TestResourceEstimate:
    def test_unit_conversions(self):
        est = ResourceEstimate(physical_qubits=19e6, runtime_seconds=5.6 * 86400)
        assert est.megaqubits == pytest.approx(19.0)
        assert est.runtime_days == pytest.approx(5.6)
        assert est.megaqubit_days == pytest.approx(19 * 5.6)

    def test_peak_footprint(self):
        assert peak_footprint([1.0, 5.0, 3.0]) == 5.0

    def test_peak_footprint_rejects_negative(self):
        with pytest.raises(ValueError):
            peak_footprint([1.0, -2.0])


class TestIdleOptimization:
    def test_rate_optimum_in_sub_millisecond_range(self):
        opt = idle.optimal_storage_period(27, ERR, PHYS)
        assert 2e-4 < opt.period < 5e-3

    def test_volume_optimum_in_paper_basin(self):
        # Paper operates at 8 ms; the volume-based optimum (Fig. 11(c))
        # sits in the flat several-to-tens-of-ms basin.
        opt = idle.optimal_storage_period_volume(ERR, PHYS)
        assert 2e-3 < opt.period < 4e-2

    def test_volume_basin_is_flat(self):
        # Cost within the 8-30 ms basin varies by < 2x (Fig. 11(c) shape).
        def cost(period):
            for d in range(3, 201, 2):
                if idle.storage_error_rate(d, period, ERR, PHYS) <= 1e-13:
                    return d * d / period
            raise AssertionError("target unreachable")
        costs = [cost(p) for p in (8e-3, 16e-3, 30e-3)]
        assert max(costs) / min(costs) < 2.0

    def test_optimum_nearly_distance_independent(self):
        # Paper Fig. 11(c): optimal frequency largely independent of d.
        p15 = idle.optimal_storage_period(15, ERR, PHYS).period
        p31 = idle.optimal_storage_period(31, ERR, PHYS).period
        assert 0.3 < p15 / p31 < 3.0

    def test_idle_error_comparable_to_gate_error_at_optimum(self):
        # Paper Fig. 11(d): optimum where idle ~ gate error (within ~an
        # order of magnitude; the exact ratio is 1/(k-1)).
        opt = idle.optimal_storage_period(27, ERR, PHYS)
        ratio = opt.idle_error / opt.gate_error
        assert 0.01 < ratio < 1.5

    def test_analytic_matches_grid(self):
        grid = idle.optimal_storage_period(27, ERR, PHYS).period
        closed = idle.analytic_optimal_period(27, ERR, PHYS)
        assert grid == pytest.approx(closed, rel=0.1)

    def test_longer_coherence_allows_sparser_se(self):
        short = idle.optimal_storage_period(27, ERR, PHYS.rescaled(coherence_time=1.0))
        long = idle.optimal_storage_period(27, ERR, PHYS.rescaled(coherence_time=100.0))
        assert long.period > short.period

    def test_rate_has_interior_minimum(self):
        opt = idle.optimal_storage_period(27, ERR, PHYS)
        denser = idle.storage_error_rate(27, opt.period / 10, ERR, PHYS)
        sparser = idle.storage_error_rate(27, opt.period * 10, ERR, PHYS)
        assert denser > opt.error_rate
        assert sparser > opt.error_rate

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            idle.storage_error_rate(27, 0.0, ERR, PHYS)
