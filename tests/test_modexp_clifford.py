"""Tests for windowed multiply-add and transversal Clifford moves."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arithmetic.modexp import (
    MultiplyAddSpec,
    multiply_add,
    multiply_add_circuit,
)
from repro.codes.transversal_clifford import (
    FoldPermutation,
    permutation_is_correct,
    transversal_h_time,
    transversal_s_time,
)
from repro.core.params import PhysicalParams

PHYS = PhysicalParams()


class TestWindowedMultiplyAdd:
    @given(st.integers(2, 6), st.integers(1, 3), st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_integer_arithmetic(self, width, window, data):
        c = data.draw(st.integers(0, 2**width - 1))
        x = data.draw(st.integers(0, 2**width - 1))
        t = data.draw(st.integers(0, 2**width - 1))
        spec = MultiplyAddSpec(width, window, c)
        assert multiply_add(spec, x, t) == (t + c * x) % 2**width

    def test_window_not_dividing_width(self):
        spec = MultiplyAddSpec(5, 2, 19)
        assert multiply_add(spec, 13, 7) == (7 + 19 * 13) % 32

    def test_lookup_addition_count(self):
        assert MultiplyAddSpec(8, 3, 1).num_lookup_additions == 3

    def test_window_tables(self):
        spec = MultiplyAddSpec(4, 2, 3)
        assert spec.window_table(0) == [0, 3, 6, 9]
        assert spec.window_table(1) == [0, 12, 8, 4]  # (3*v << 2) mod 16

    def test_toffoli_count_formula(self):
        # Per window: QROM + inverse (2 x 2 (2^w - 2) CCX) plus a 2n-CCX
        # Cuccaro adder.
        for width, window in ((6, 3), (6, 2), (6, 1)):
            circuit = multiply_add_circuit(MultiplyAddSpec(width, window, 5))
            windows = -(-width // window)
            expected = windows * (4 * (2**window - 2) + 2 * width)
            assert circuit.toffoli_count() == expected

    def test_constant_overflow_rejected(self):
        with pytest.raises(ValueError):
            MultiplyAddSpec(3, 2, 8)


class TestFoldPermutation:
    @pytest.mark.parametrize("d", [3, 5, 9])
    def test_permutation_correct(self, d):
        assert permutation_is_correct(d)

    @pytest.mark.parametrize("d", [3, 5, 9])
    def test_batches_aod_valid(self, d):
        FoldPermutation(d).validate()

    def test_diagonal_atoms_never_move(self):
        fold = FoldPermutation(5)
        moved = {m.source for batch in fold.batches() for m in batch.moves}
        for i in range(5):
            assert (i, i) not in moved

    def test_duration_positive_and_monotone(self):
        t3 = FoldPermutation(3).duration(PHYS)
        t7 = FoldPermutation(7).duration(PHYS)
        assert 0 < t3 < t7

    def test_h_and_s_times(self):
        h = transversal_h_time(5, PHYS)
        s = transversal_s_time(5, PHYS)
        assert s > h > FoldPermutation(5).duration(PHYS)
