"""Tests for the circuit IR and the dense state-vector simulator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.circuit import Circuit, Operation
from repro.sim.statevector import StateVector, ccz_state


class TestCircuitIR:
    def test_builder_chaining(self):
        c = Circuit().h(0).cx(0, 1).measure(0, 1)
        assert len(c) == 3
        assert c.num_qubits == 2
        assert c.num_measurements == 2

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            Operation("FOO", (0,))

    def test_noise_probability_validated(self):
        with pytest.raises(ValueError):
            Operation("X_ERROR", (0,), 1.5)

    def test_pair_arity_validated(self):
        with pytest.raises(ValueError):
            Operation("CX", (0, 1, 2))

    def test_triple_arity_validated(self):
        with pytest.raises(ValueError):
            Operation("CCZ", (0, 1))

    def test_counters(self):
        c = Circuit().cx(0, 1, 1, 2).h(0).ccz(0, 1, 2)
        assert c.count("CX") == 2
        assert c.count("H") == 1
        assert c.count("CCZ") == 1

    def test_detector_and_observable_counts(self):
        c = Circuit().measure(0).detector([0]).observable_include(0, [0])
        assert c.num_detectors == 1
        assert c.num_observables == 1

    def test_without_noise(self):
        c = Circuit().h(0).depolarize1([0], 0.01).measure(0)
        clean = c.without_noise()
        assert len(clean) == 2
        assert len(c) == 3

    def test_iadd_concatenates(self):
        a = Circuit().h(0)
        b = Circuit().measure(0)
        a += b
        assert len(a) == 2
        assert a.num_measurements == 1


class TestRecordReferenceValidation:
    """append() rejects record references that don't resolve yet."""

    def test_detector_forward_reference_rejected(self):
        c = Circuit().reset(0).measure(0)
        with pytest.raises(ValueError, match=r"record 1.*\[0, 1\)"):
            c.detector([1])

    def test_detector_negative_reference_rejected(self):
        c = Circuit().reset(0).measure(0)
        with pytest.raises(ValueError, match="record -1"):
            c.detector([-1])

    def test_detector_before_any_measurement_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 0\)"):
            Circuit().detector([0])

    def test_observable_forward_reference_rejected(self):
        c = Circuit().reset(0).measure(0)
        with pytest.raises(ValueError, match="record 3"):
            c.observable_include(0, [0, 3])

    def test_observable_negative_reference_rejected(self):
        c = Circuit().reset(0).measure(0)
        with pytest.raises(ValueError, match="record -2"):
            c.observable_include(0, [-2])

    def test_rejected_append_leaves_circuit_unchanged(self):
        c = Circuit().reset(0).measure(0)
        before = len(c)
        with pytest.raises(ValueError):
            c.detector([5])
        assert len(c) == before

    def test_empty_record_lists_are_allowed(self):
        # Degenerate but legal: a constant detector / empty observable.
        c = Circuit().detector([]).observable_include(0, [])
        assert c.num_detectors == 1
        assert c.num_observables == 1

    def test_boundary_record_accepted(self):
        c = Circuit().reset(0, 1).measure(0, 1)
        c.detector([0, 1])  # both in range: no raise
        assert c.num_detectors == 1


class TestStateVector:
    def test_initial_state(self):
        sv = StateVector(2)
        assert sv.amplitudes[0] == pytest.approx(1.0)

    def test_h_makes_plus(self):
        sv = StateVector(1)
        sv.run(Circuit().h(0))
        assert np.allclose(sv.amplitudes, [1 / math.sqrt(2)] * 2)

    def test_bell_state(self):
        sv = StateVector(2)
        sv.run(Circuit().h(0).cx(0, 1))
        assert sv.probability_of_one(0) == pytest.approx(0.5)
        assert abs(sv.amplitudes[1]) < 1e-12  # |01> amplitude zero
        assert abs(sv.amplitudes[2]) < 1e-12

    def test_measure_collapses_bell(self):
        sv = StateVector(2, rng=np.random.default_rng(3))
        sv.run(Circuit().h(0).cx(0, 1))
        a = sv.measure(0)
        b = sv.measure(1)
        assert a == b

    def test_forced_measurement_postselects(self):
        sv = StateVector(1)
        sv.run(Circuit().h(0))
        out = sv.measure(0, forced=1)
        assert out == 1
        assert abs(sv.amplitudes[1]) == pytest.approx(1.0)

    def test_forcing_impossible_outcome_raises(self):
        sv = StateVector(1)
        with pytest.raises(ValueError):
            sv.measure(0, forced=1)

    def test_t_gate_phase(self):
        sv = StateVector(1)
        sv.run(Circuit().h(0).t(0).t(0).t(0).t(0))  # T^4 = Z
        ref = StateVector(1)
        ref.run(Circuit().h(0).z(0))
        assert sv.fidelity_with(ref) == pytest.approx(1.0)

    def test_t_tdag_cancel(self):
        sv = StateVector(1)
        sv.run(Circuit().h(0).t(0).t_dag(0))
        ref = StateVector(1)
        ref.run(Circuit().h(0))
        assert sv.fidelity_with(ref) == pytest.approx(1.0)

    def test_ccz_phase_only_on_111(self):
        sv = StateVector(3)
        sv.run(Circuit().x(0).x(1).x(2).ccz(0, 1, 2))
        assert sv.amplitudes[7] == pytest.approx(-1.0)
        sv2 = StateVector(3)
        sv2.run(Circuit().x(0).x(1).ccz(0, 1, 2))
        assert sv2.amplitudes[3] == pytest.approx(1.0)

    def test_ccx_is_toffoli(self):
        sv = StateVector(3)
        sv.run(Circuit().x(0).x(1).ccx(0, 1, 2))
        assert abs(sv.amplitudes[7]) == pytest.approx(1.0)

    def test_swap(self):
        sv = StateVector(2)
        sv.run(Circuit().x(0).swap(0, 1))
        assert abs(sv.amplitudes[2]) == pytest.approx(1.0)

    def test_ccz_state_is_equal_superposition_with_sign(self):
        sv = ccz_state()
        for idx in range(8):
            expected = -1.0 if idx == 7 else 1.0
            assert sv.amplitudes[idx] * math.sqrt(8) == pytest.approx(expected)

    def test_reset_mid_circuit(self):
        sv = StateVector(1, rng=np.random.default_rng(0))
        sv.run(Circuit().x(0).reset(0))
        assert abs(sv.amplitudes[0]) == pytest.approx(1.0)

    def test_noise_op_rejected(self):
        sv = StateVector(1)
        with pytest.raises(ValueError):
            sv.run(Circuit().depolarize1([0], 0.1))

    @given(st.integers(0, 7))
    @settings(max_examples=8)
    def test_basis_state_prep(self, value):
        c = Circuit()
        for q in range(3):
            if (value >> q) & 1:
                c.x(q)
        sv = StateVector(3)
        sv.run(c)
        assert abs(sv.amplitudes[value]) == pytest.approx(1.0)
