"""Tests for the pluggable noise layer: models, registry, DEM weighting.

The load-bearing guarantees:

* ``UniformDepolarizing(p)`` applied to the clean builders reproduces the
  historical hand-emitted noisy op stream *token for token* (golden files
  captured from the pre-refactor emitter).
* The biased/movement models emit valid channels, and the movement model
  really consumes AOD-validated schedule durations.
* DEM-weighted MWPM never decodes worse than the uniform-weight baseline
  graph on the fig6 memory sweep, bit-reproducibly per seed.
"""

import math
from pathlib import Path

import numpy as np
import pytest

from repro.atoms.scheduler import MoveSchedule, round_trip
from repro.core.params import PhysicalParams
from repro.decoder.engine import DecodingEngine, available_decoders, make_decoder
from repro.decoder.graph import DecodingGraph
from repro.noise.dem import extract_dem, uniform_graph, weighted_graph
from repro.noise.models import (
    BiasedPauli,
    MovementAware,
    NoiseModel,
    UniformDepolarizing,
    available_noise_models,
    make_noise_model,
    register_noise_model,
    transversal_move_schedule,
)
from repro.sim.circuit import Circuit
from repro.sim.frame import FrameSimulator
from repro.sim.memory import (
    MemoryExperimentBuilder,
    memory_circuit,
    transversal_cnot_experiment,
)

GOLDEN = Path(__file__).parent / "golden"


def _tokens(circuit: Circuit) -> str:
    return "\n".join(
        f"{op.name} {op.arg!r} {' '.join(str(t) for t in op.targets)}".rstrip()
        for op in circuit.operations
    ) + "\n"


class TestGoldenEmissionParity:
    """UniformDepolarizing must reproduce the historical emission exactly."""

    @pytest.mark.parametrize("name,build", [
        ("emission_memory_d3_r3_p002_Z.txt",
         lambda: memory_circuit(3, 3, 0.002)),
        ("emission_memory_d3_r2_p001_X.txt",
         lambda: memory_circuit(3, 2, 0.001, basis="X")),
        ("emission_cnot_d3_r4_p004_Z.txt",
         lambda: transversal_cnot_experiment(3, 4, 0.004, [1, 2]).circuit),
        ("emission_memory_d5_r2_p003_Z.txt",
         lambda: memory_circuit(5, 2, 0.003)),
    ])
    def test_token_identical(self, name, build):
        assert _tokens(build()) == (GOLDEN / name).read_text()

    def test_explicit_model_matches_p_sugar(self):
        sugar = memory_circuit(3, 2, 0.004)
        explicit = memory_circuit(3, 2, 0.004, noise=UniformDepolarizing(0.004))
        named = memory_circuit(3, 2, 0.004, noise="uniform_depolarizing")
        assert _tokens(sugar) == _tokens(explicit) == _tokens(named)

    def test_markers_consumed(self):
        for model in (UniformDepolarizing(0.0), UniformDepolarizing(1e-3),
                      BiasedPauli(1e-3), MovementAware(1e-3)):
            circuit = memory_circuit(3, 2, 1e-3, noise=model)
            names = {op.name for op in circuit.operations}
            assert "IDLE" not in names and "FENCE" not in names

    def test_zero_probability_emits_clean_circuit(self):
        noisy = memory_circuit(3, 2, 0.0)
        assert _tokens(noisy) == _tokens(noisy.without_noise())

    def test_injected_noise_passes_through(self):
        # Deliberate error injection into the clean circuit: a documented
        # violation of the clean-stage contract, so strict verification
        # (on suite-wide via REPRO_STRICT) is opted out here.
        builder = MemoryExperimentBuilder(3, basis="Z", p=0.0, strict=False)
        builder.se_round()
        builder.circuit.x_error([0, 1], 1.0)
        builder.se_round()
        circuit = builder.finalize()
        injected = [op for op in circuit.operations if op.name == "X_ERROR"]
        assert len(injected) == 1 and injected[0].arg == 1.0


class TestRegistry:
    def test_builtin_names(self):
        names = available_noise_models()
        assert {"uniform_depolarizing", "biased_pauli", "movement_aware"} <= set(names)

    def test_make_noise_model(self):
        model = make_noise_model("biased_pauli", p=1e-3, bias=4.0)
        assert isinstance(model, NoiseModel)
        assert model.bias == 4.0

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ValueError, match="available"):
            make_noise_model("no_such_model", p=1e-3)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_noise_model("uniform_depolarizing", UniformDepolarizing)

    def test_builder_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            UniformDepolarizing(1.5)
        with pytest.raises(ValueError):
            BiasedPauli(1e-3, bias=0.0)


class TestBiasedPauli:
    def test_bias_one_equals_depolarizing_rates(self):
        model = BiasedPauli(3e-3, bias=1.0)
        assert np.allclose(model._p1, [1e-3] * 3)
        assert np.allclose(model._p2, [3e-3 / 15] * 15)

    def test_channel_totals_are_p(self):
        model = BiasedPauli(2e-3, bias=8.0)
        assert math.isclose(sum(model._p1), 2e-3)
        assert math.isclose(sum(model._p2), 2e-3)
        # Z outcomes carry `bias` times the X weight.
        assert math.isclose(model._p1[2] / model._p1[0], 8.0)

    def test_emits_pauli_channels(self):
        circuit = memory_circuit(3, 2, 1e-3, noise=BiasedPauli(1e-3, bias=4.0))
        names = [op.name for op in circuit.operations]
        assert "PAULI_CHANNEL_1" in names
        assert "PAULI_CHANNEL_2" in names
        assert "DEPOLARIZE1" not in names and "DEPOLARIZE2" not in names

    def test_channel_op_validation(self):
        with pytest.raises(ValueError, match="outcome probabilities"):
            Circuit().append("PAULI_CHANNEL_1", (0,), 0.1, (0.1,))
        with pytest.raises(ValueError, match="invalid"):
            Circuit().append("PAULI_CHANNEL_1", (0,), 0.9, (0.4, 0.4, 0.4))
        with pytest.raises(ValueError, match="pairs"):
            Circuit().pauli_channel_2([0], [0.01] * 15)
        with pytest.raises(ValueError, match="no outcome"):
            Circuit().append("DEPOLARIZE1", (0,), 0.1, (0.1, 0.0, 0.0))


class TestMovementAware:
    def test_idle_inflated_by_move_duration(self):
        p = 1e-3
        model = MovementAware(p, distance=5)
        assert model.move_duration > 0
        assert model.idle_p > p
        # The non-idle locations keep the bare rate.
        assert model.after_gate2((0, 1))[0][2] == p

    def test_longer_coherence_means_less_idle_error(self):
        slow = MovementAware(1e-3, physical=PhysicalParams().rescaled(coherence_time=0.1))
        fast = MovementAware(1e-3, physical=PhysicalParams().rescaled(coherence_time=100.0))
        assert slow.idle_p > fast.idle_p

    def test_schedule_durations_reach_the_circuit(self):
        # The emitted DEPOLARIZE1 arg must equal the model's computed
        # idle_p -- the schedule's physical duration, through core.idle.
        model = MovementAware(1e-3, distance=3)
        circuit = memory_circuit(3, 2, 1e-3, noise=model)
        idles = [op for op in circuit.operations if op.name == "DEPOLARIZE1"]
        assert idles and all(op.arg == pytest.approx(model.idle_p) for op in idles)

    def test_registry_name_resolves_with_circuit_distance(self):
        # noise="movement_aware" must derive the move duration from the
        # *circuit's* distance, not the factory default.
        circuit = memory_circuit(5, 2, 1e-3, noise="movement_aware")
        expected = MovementAware(1e-3, distance=5).idle_p
        idles = [op for op in circuit.operations if op.name == "DEPOLARIZE1"]
        assert idles and all(op.arg == pytest.approx(expected) for op in idles)
        assert expected > MovementAware(1e-3, distance=3).idle_p

    def test_custom_schedule(self):
        schedule = round_trip("test", [(0, 0), (0, 1)], 0, 10)
        model = MovementAware(1e-3, schedule=schedule)
        assert model.move_duration == pytest.approx(
            schedule.duration(PhysicalParams())
        )

    def test_transversal_move_schedule_is_aod_valid(self):
        schedule = transversal_move_schedule(5)
        assert isinstance(schedule, MoveSchedule)
        assert schedule.move_count() == 2
        assert schedule.max_move_sites == pytest.approx(5.0)


class TestDemWeighting:
    def test_biased_dem_has_asymmetric_probabilities(self):
        # A Z-biased channel must put more probability on mechanisms that
        # flip Z-type detectors (which catch X errors) ... i.e. on the
        # X-flip mechanisms; check via a one-qubit toy circuit instead.
        circuit = (
            Circuit()
            .reset(0)
            .pauli_channel_1([0], 0.01, 0.0, 0.04)
            .measure(0)
            .detector([0])
        )
        dem = extract_dem(circuit)
        # Only X and Y flip an M record; py = 0, so one mechanism at px.
        assert len(dem.mechanisms) == 1
        assert dem.mechanisms[0].probability == pytest.approx(0.01)

    def test_uniform_graph_flattens_weights(self):
        dem = extract_dem(memory_circuit(3, 2, 3e-3))
        weighted = weighted_graph(dem)
        flat = uniform_graph(dem, probability=1e-3)
        assert len(weighted.edges) == len(flat.edges)
        assert len({e.probability for e in flat.edges}) == 1
        assert len({round(e.probability, 12) for e in weighted.edges}) > 1

    def test_mwpm_uniform_registered(self):
        assert "mwpm_uniform" in available_decoders()

    def test_weighted_never_worse_than_uniform_on_fig6_sweep(self):
        """Acceptance: DEM-LLR MWPM <= uniform baseline, per seed, paired."""
        p = 0.003
        for distance, shots in ((3, 2000), (5, 800)):
            circuit = memory_circuit(distance, distance + 1, p)
            dem = FrameSimulator(circuit).detector_error_model()
            weighted = make_decoder("mwpm", dem)
            flat = make_decoder("mwpm_uniform", dem)
            with DecodingEngine(circuit, weighted) as engine:
                det, obs_k = engine.collect(shots, seed=np.random.SeedSequence(29))
            obs = np.unpackbits(obs_k, axis=1, count=circuit.num_observables)
            failures = {}
            for name, decoder in (("weighted", weighted), ("uniform", flat)):
                pred = decoder.decode_packed(det, circuit.num_detectors)
                failures[name] = int((pred[:, 0] ^ obs[:, 0]).sum())
            assert failures["weighted"] <= failures["uniform"], (
                f"d={distance}: DEM-weighted MWPM ({failures['weighted']}) "
                f"worse than the uniform baseline ({failures['uniform']})"
            )

    def test_paired_failure_counts_matches_engine_run(self):
        # The shared paired-decode helper samples with the engine's shard
        # layout, so a single-decoder pairing equals an ordinary run.
        from repro.decoder.analysis import paired_failure_counts

        circuit = memory_circuit(3, 3, 4e-3, basis="X",
                                 noise=BiasedPauli(4e-3, bias=4.0))
        counts = paired_failure_counts(circuit, {"mwpm": "mwpm"}, 512, seed=7)
        with DecodingEngine(circuit, "mwpm") as engine:
            res = engine.run(512, seed=7)
        assert counts["mwpm"] == res.failures
        assert paired_failure_counts(circuit, {}, 512) == {}

    def test_engine_bit_reproducible_per_seed(self):
        circuit = memory_circuit(3, 3, 4e-3, noise=BiasedPauli(4e-3, bias=4.0))
        results = []
        for _ in range(2):
            with DecodingEngine(circuit, "mwpm") as engine:
                res = engine.run(600, seed=23)
            results.append((res.shots, res.failures))
        assert results[0] == results[1]

    def test_sequential_decoder_accepts_biased_noise(self):
        builder = transversal_cnot_experiment(
            3, 3, 3e-3, [1], noise=BiasedPauli(3e-3, bias=4.0)
        )
        with DecodingEngine(
            builder.circuit, "sequential",
            detector_meta=builder.detector_meta, observable=None,
        ) as engine:
            res = engine.run(200, seed=3)
        assert res.shots == 200


class TestMechanismEnumeration:
    """enumerate_mechanisms must cover repro.sim.ops.NOISE exactly."""

    def test_every_builtin_channel_enumerates(self):
        from repro.noise.dem import enumerate_mechanisms
        from repro.sim.circuit import Circuit

        c = Circuit().reset(0, 1)
        c.x_error([0], 1e-3).z_error([0], 1e-3)
        c.append("Y_ERROR", [0], 1e-3)
        c.depolarize1([0], 1e-3).depolarize2([0, 1], 1e-3)
        c.pauli_channel_1([0], 1e-4, 2e-4, 3e-4)
        c.pauli_channel_2([0, 1], [1e-5] * 15)
        c.measure(0, 1)
        mechs = enumerate_mechanisms(c)
        # 1 + 1 + 1 outcomes for X/Z/Y, 3 for D1, 15 for D2, 3 + 15 biased.
        assert len(mechs) == 1 + 1 + 1 + 3 + 15 + 3 + 15

    def test_unrecognized_noise_op_raises(self, monkeypatch):
        """Regression: extending NOISE without extending the enumerator
        must raise instead of silently dropping the channel from the DEM."""
        import repro.sim.circuit as circuit_mod
        import repro.sim.ops as ops
        from repro.noise.dem import enumerate_mechanisms
        from repro.sim.circuit import Circuit

        monkeypatch.setattr(ops, "NOISE", ops.NOISE + ("W_ERROR",))
        monkeypatch.setattr(
            circuit_mod, "ALL_NAMES", circuit_mod.ALL_NAMES + ("W_ERROR",)
        )
        c = Circuit().reset(0)
        c.append("W_ERROR", [0], 1e-3)
        c.measure(0)
        with pytest.raises(ValueError, match="no DEM mechanism enumeration"):
            enumerate_mechanisms(c)

    def test_non_noise_ops_are_skipped(self):
        from repro.noise.dem import enumerate_mechanisms
        from repro.sim.circuit import Circuit

        c = Circuit().reset(0).h(0).measure(0).detector([0])
        assert enumerate_mechanisms(c) == []
