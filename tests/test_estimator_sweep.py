"""Unit tests for the estimation pipeline: sweep engine, cache, registry."""

import math
from functools import partial

import pytest

from repro.core.cache import cache_stats, caching_disabled, clear_caches, memoized
import importlib

# `repro.estimator.sweep` the *attribute* is shadowed by the function of
# the same name re-exported from the package __init__.
sweep_module = importlib.import_module("repro.estimator.sweep")

from repro.estimator.sweep import (
    Axis,
    GridSpec,
    grid,
    measured_pool_overhead,
    minimize,
    sweep,
    zipped,
)


def _square_point(point):
    return {"square": point["x"] * point["x"]}


def _pair_point(point):
    return {"product": point["x"] * point["y"]}


class TestGridSpec:
    def test_cartesian_order_last_axis_fastest(self):
        spec = grid(a=(1, 2), b=(10, 20))
        assert spec.points() == [
            {"a": 1, "b": 10},
            {"a": 1, "b": 20},
            {"a": 2, "b": 10},
            {"a": 2, "b": 20},
        ]
        assert len(spec) == 4

    def test_zipped_alignment(self):
        spec = zipped(a=(1, 2, 3), b=(10, 20, 30))
        assert spec.points() == [
            {"a": 1, "b": 10},
            {"a": 2, "b": 20},
            {"a": 3, "b": 30},
        ]
        assert len(spec) == 3

    def test_zipped_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            zipped(a=(1, 2), b=(1,))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            grid(a=())

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(ValueError):
            GridSpec((Axis("a", (1,)), Axis("a", (2,))))


class TestSweep:
    def test_records_merge_point_and_result(self):
        records = sweep(_square_point, grid(x=(1, 2, 3)))
        assert records == [
            {"x": 1, "square": 1},
            {"x": 2, "square": 4},
            {"x": 3, "square": 9},
        ]

    def test_scalar_results_stored_under_value(self):
        records = sweep(lambda p: p["x"] + 1, grid(x=(1, 2)))
        assert records == [{"x": 1, "value": 2}, {"x": 2, "value": 3}]

    def test_shard_count_invariance(self):
        spec = grid(x=tuple(range(10)), y=tuple(range(7)))
        serial = sweep(_pair_point, spec, jobs=1)
        for jobs, shard_size in ((2, 4), (3, 16), (4, 1)):
            sharded = sweep(_pair_point, spec, jobs=jobs, shard_size=shard_size)
            assert sharded == serial

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            sweep(_square_point, grid(x=(1,)), jobs=0)


class TestAutoSerialFallback:
    """Small grids must not pay pool-spawn overhead they cannot recoup."""

    def test_small_grid_stays_serial(self, monkeypatch):
        # Huge measured overhead -> the projection always picks serial; a
        # pool spawn would blow up via the poisoned Pool.
        monkeypatch.setitem(sweep_module._CALIBRATION, 2, 3600.0)
        monkeypatch.setattr(
            sweep_module.multiprocessing, "Pool", _forbidden_pool
        )
        records = sweep(_square_point, grid(x=(1, 2, 3, 4)), jobs=2)
        assert records == [
            {"x": 1, "square": 1},
            {"x": 2, "square": 4},
            {"x": 3, "square": 9},
            {"x": 4, "square": 16},
        ]

    def test_expensive_grid_goes_parallel(self, monkeypatch):
        # Zero measured overhead -> any nonzero projected work parallelizes.
        monkeypatch.setitem(sweep_module._CALIBRATION, 2, 0.0)
        serial = sweep(_pair_point, grid(x=tuple(range(6)), y=(1, 2)), jobs=1)
        sharded = sweep(
            _pair_point, grid(x=tuple(range(6)), y=(1, 2)), jobs=2, shard_size=3
        )
        assert sharded == serial

    def test_auto_serial_off_preserves_old_behavior(self, monkeypatch):
        monkeypatch.setitem(sweep_module._CALIBRATION, 2, 3600.0)
        records = sweep(
            _square_point, grid(x=(1, 2, 3)), jobs=2, auto_serial=False
        )
        assert [r["square"] for r in records] == [1, 4, 9]

    def test_probe_only_grid(self, monkeypatch):
        # Grids no larger than the probe count never consult the pool.
        monkeypatch.setattr(
            sweep_module.multiprocessing, "Pool", _forbidden_pool
        )
        assert sweep(_square_point, grid(x=(1, 2)), jobs=4) == [
            {"x": 1, "square": 1},
            {"x": 2, "square": 4},
        ]

    def test_measured_overhead_memoized(self, monkeypatch):
        monkeypatch.setitem(sweep_module._CALIBRATION, 7, 1.25)
        monkeypatch.setattr(
            sweep_module.multiprocessing, "Pool", _forbidden_pool
        )
        assert measured_pool_overhead(7) == 1.25

    def test_calibration_measures_real_overhead(self):
        sweep_module._CALIBRATION.pop(2, None)
        overhead = measured_pool_overhead(2)
        assert overhead > 0.0
        # Memoized: a second call returns the same measurement.
        assert measured_pool_overhead(2) == overhead


def _forbidden_pool(*args, **kwargs):
    raise AssertionError("a worker pool must not be spawned here")


class TestMinimize:
    def test_finds_argmin_without_bound(self):
        result = minimize(
            lambda p: {"v": (p["x"] - 3) ** 2},
            grid(x=tuple(range(7))),
            objective=lambda r: r["v"],
        )
        assert result.best["x"] == 3
        assert result.best_objective == 0
        assert result.evaluated == 7
        assert result.pruned == 0

    def test_sound_bound_prunes_without_moving_argmin(self):
        evaluated = []

        def fn(point):
            evaluated.append(point["x"])
            return {"v": (point["x"] - 3) ** 2}

        # Half the true objective: sound (never exceeds it), so points with
        # bound >= best-so-far can be skipped safely.
        result = minimize(
            fn,
            grid(x=tuple(range(20))),
            objective=lambda r: r["v"],
            lower_bound=lambda p: (p["x"] - 3) ** 2 / 2.0,
        )
        assert result.best["x"] == 3
        assert result.pruned > 0
        assert result.evaluated == len(evaluated) < 20

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            minimize(
                lambda p: 0.0, GridSpec(()), objective=lambda r: r["value"]
            )

    def test_all_infinite_objectives_rejected(self):
        with pytest.raises(ValueError, match="finite objective"):
            minimize(
                lambda p: math.inf,
                grid(x=(1, 2, 3)),
                objective=lambda r: r["value"],
            )


class TestCache:
    def test_hits_counted_and_clearable(self):
        calls = []

        @memoized
        def model(x):
            calls.append(x)
            return x * x

        assert model(2) == 4
        assert model(2) == 4
        assert calls == [2]
        name = next(
            n for n in cache_stats()
            if n.endswith("test_hits_counted_and_clearable.<locals>.model")
        )
        hits, misses, size = cache_stats()[name]
        assert (hits, misses, size) == (1, 1, 1)
        clear_caches()
        assert cache_stats()[name] == (0, 0, 0)
        assert model(2) == 4
        assert calls == [2, 2]

    def test_unhashable_arguments_bypass_cache(self):
        @memoized
        def total(values):
            return sum(values)

        assert total([1, 2, 3]) == 6
        assert total((1, 2, 3)) == 6  # hashable path still works

    def test_caching_disabled_context(self):
        calls = []

        @memoized
        def model(x):
            calls.append(x)
            return -x

        model(1)
        with caching_disabled():
            model(1)
            model(1)
        assert calls == [1, 1, 1]
        model(1)  # cache entry from before the context still valid
        assert calls == [1, 1, 1]


class TestOptimizerSweep:
    def test_pruning_preserves_argmin_and_volume(self):
        from repro.algorithms.optimizer import optimize_factoring

        pruned = optimize_factoring()
        full = optimize_factoring(prune=False)
        assert pruned.parameters == full.parameters
        assert pruned.spacetime_volume == full.spacetime_volume
        assert pruned.num_pruned > 0
        assert len(pruned.trace) + pruned.num_pruned == len(full.trace)

    def test_volume_lower_bound_is_sound_on_grid(self):
        from repro.algorithms.factoring import (
            estimate_factoring,
            spacetime_volume_lower_bound,
        )
        from repro.algorithms.optimizer import candidate_parameters

        for params in candidate_parameters(
            window_exp_range=(2, 5), window_mul_range=(3,),
            runway_separations=(48, 256, 1024),
        ):
            est = estimate_factoring(params)
            true_volume = est.physical_qubits * est.runtime_seconds
            assert spacetime_volume_lower_bound(params) <= true_volume

    def test_custom_candidates_still_supported(self):
        from repro.algorithms.optimizer import (
            candidate_parameters,
            optimize_factoring,
        )

        result = optimize_factoring(
            candidates=candidate_parameters(
                window_exp_range=(3,), window_mul_range=(4,),
                runway_separations=(96,),
            )
        )
        assert result.parameters.runway_separation == 96


class TestScenarioSharding:
    @pytest.mark.parametrize("name", ["fig11", "fig13", "fig14", "fig6b"])
    def test_sharded_matches_serial(self, name):
        from repro.estimator.registry import run_scenario

        serial = run_scenario(name, jobs=1)
        sharded = run_scenario(name, jobs=2)
        assert serial.records == sharded.records
        assert serial.metadata == sharded.metadata

    def test_registry_rejects_unknown_and_duplicate(self):
        from repro.estimator.registry import (
            Scenario,
            get_scenario,
            register_scenario,
        )

        with pytest.raises(KeyError, match="available"):
            get_scenario("does-not-exist")
        existing = get_scenario("fig13")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(existing)


def test_uncached_sweep_is_slower_than_cached():
    """The memoized sub-models make the Table II sweep markedly faster."""
    import time

    from repro.algorithms.optimizer import optimize_factoring

    clear_caches()
    start = time.perf_counter()
    cached = optimize_factoring(prune=False)
    cached_s = time.perf_counter() - start

    clear_caches()
    with caching_disabled():
        start = time.perf_counter()
        uncached = optimize_factoring(prune=False)
        uncached_s = time.perf_counter() - start

    assert cached.parameters == uncached.parameters
    # Conservative in-test bound (the benchmark runner documents the real
    # speedup); mainly guards against the cache being silently bypassed.
    assert uncached_s > cached_s
