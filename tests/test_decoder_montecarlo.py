"""Monte-Carlo decoding tests: suppression with distance, Eq. (4) behaviour.

These are the statistical anchors for the paper's Fig. 6(a): the memory
logical error shrinks with distance below threshold, transversal-CNOT
circuits decode at full distance with the sequential correlated decoder,
and the fitted model constants are sensible.  Shot counts are kept modest;
assertions use generous margins.
"""

import numpy as np
import pytest

from repro.decoder.analysis import (
    cnot_experiment_rate,
    fit_alpha,
    fit_memory_model,
    memory_logical_error,
    per_round_rate,
)
from repro.decoder.sequential import SequentialCNOTDecoder
from repro.sim.frame import FrameSimulator
from repro.sim.memory import transversal_cnot_experiment


@pytest.fixture(scope="module")
def memory_rates():
    """Shared memory MC results at p = 0.003."""
    out = {}
    for d, rounds, shots in [(3, 4, 3000), (5, 6, 1500)]:
        res = memory_logical_error(d, rounds, 0.003, shots, seed=11)
        out[d] = per_round_rate(res, rounds)
    return out


class TestMemoryMonteCarlo:
    def test_distance_suppresses_error(self, memory_rates):
        assert memory_rates[5] < memory_rates[3] / 2

    def test_noiseless_never_fails(self):
        res = memory_logical_error(3, 3, 0.0, 50, seed=0)
        assert res.failures == 0

    def test_rate_increases_with_p(self):
        low = memory_logical_error(3, 3, 0.001, 1500, seed=3)
        high = memory_logical_error(3, 3, 0.008, 1500, seed=3)
        assert high.rate > low.rate

    def test_memory_fit_constants(self, memory_rates):
        fit = fit_memory_model([3, 5], [memory_rates[3], memory_rates[5]])
        # MWPM at p = 0.003: suppression factor well above 1, prefactor O(0.1).
        assert fit.lam > 2.0
        assert 1e-3 < fit.prefactor_c < 3.0

    def test_std_error_reported(self):
        res = memory_logical_error(3, 3, 0.005, 500, seed=5)
        assert 0 <= res.std_error < 0.1


class TestTransversalCnotMonteCarlo:
    def test_sequential_decoder_full_distance(self):
        # Per-CNOT error must drop from d=3 to d=5 (the broken-decoder
        # signature is flat or rising rates).
        res3, n3 = cnot_experiment_rate(3, 6, 0.003, 1, 1200, seed=13)
        res5, n5 = cnot_experiment_rate(5, 6, 0.003, 1, 700, seed=13)
        assert n3 == n5 == 5
        assert res5.rate / n5 < res3.rate / n3

    def test_amortization_over_cnot_density(self):
        # Eq. (4): per-CNOT cost shrinks as x grows (SE cost amortized).
        dense, n_dense = cnot_experiment_rate(3, 6, 0.003, 1, 1200, seed=17)
        sparse, n_sparse = cnot_experiment_rate(3, 6, 0.003, 3, 1200, seed=17)
        assert dense.rate / n_dense < sparse.rate / n_sparse

    def test_joint_decoder_is_weaker(self):
        seq, n = cnot_experiment_rate(5, 6, 0.003, 1, 500, seed=19)
        joint, _ = cnot_experiment_rate(5, 6, 0.003, 1, 500, seed=19, decoder="joint")
        assert seq.failures <= joint.failures

    def test_sequential_decoder_noiseless(self):
        builder = transversal_cnot_experiment(3, 4, 0.0, [1, 2])
        sim = FrameSimulator(builder.circuit, rng=np.random.default_rng(0))
        # DEM of a noiseless circuit is empty; decoder still runs.
        dem = sim.detector_error_model()
        decoder = SequentialCNOTDecoder(dem, builder.detector_meta)
        dets, obs = sim.sample(16)
        assert not decoder.decode_batch(dets).any()
        assert not obs.any()

    def test_metadata_mismatch_rejected(self):
        builder = transversal_cnot_experiment(3, 4, 1e-3, [1])
        dem = FrameSimulator(builder.circuit).detector_error_model()
        with pytest.raises(ValueError):
            SequentialCNOTDecoder(dem, builder.detector_meta[:-1])


class TestAlphaFit:
    def test_alpha_fit_positive_and_finite(self, memory_rates):
        fit = fit_memory_model([3, 5], [memory_rates[3], memory_rates[5]])
        data = []
        for d, shots in [(3, 1200), (5, 700)]:
            for every in (1, 2):
                res, n = cnot_experiment_rate(d, 6, 0.003, every, shots, seed=23)
                if res.failures == 0:
                    continue
                data.append((d, 1.0 / every, res.rate / n))
        assert len(data) >= 3
        alpha_fit = fit_alpha(data, fit.prefactor_c, fit.lam)
        # The decoding factor is decoder-dependent (paper Fig. 13(a)); the
        # fit must converge to a finite non-negative value with bounded
        # log-residual at these shot counts.
        assert 0.0 <= alpha_fit.alpha < 20.0
        assert alpha_fit.residual < 20.0
        assert 1e-4 < alpha_fit.prefactor_c < 10.0

    def test_fit_recovers_synthetic_alpha(self):
        # Generate exact Eq. (4) data and check the fit recovers alpha.
        from repro.decoder.analysis import eq4_prediction

        alpha_true, c, lam = 0.4, 0.1, 10.0
        data = [
            (d, x, eq4_prediction(d, x, c, lam, alpha_true))
            for d in (9, 13, 17)
            for x in (0.25, 0.5, 1.0, 2.0)
        ]
        fit = fit_alpha(data, c, lam)
        assert fit.alpha == pytest.approx(alpha_true, rel=0.05)
        assert fit.residual < 1e-6
