"""Cross-module integration and property tests.

These exercise seams between subsystems: gadget timings feeding the
algorithm estimate, simulators cross-checking each other, and scaling
behaviours the individual unit tests cannot see.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.factoring import FactoringParameters, estimate_factoring
from repro.arithmetic.timing import AdditionTiming
from repro.arithmetic.runways import RunwayConfig
from repro.codes.color_832 import Color832Code
from repro.core.params import ArchitectureConfig, PhysicalParams
from repro.factory.t_to_ccz import DistillationCurve, run_factory, output_fidelity
from repro.lookup.qrom import QROMSpec
from repro.lookup.timing import LookupTiming
from repro.sim.circuit import Circuit
from repro.sim.statevector import StateVector
from repro.sim.tableau import TableauSimulator


class TestEstimateConsistency:
    def test_runtime_equals_counts_times_gadget_times(self):
        est = estimate_factoring()
        expected = est.num_lookup_additions * (est.lookup_time + est.addition_time)
        assert est.runtime_seconds == pytest.approx(expected)

    def test_gadget_times_match_standalone_models(self):
        params = FactoringParameters()
        est = estimate_factoring(params)
        lookup = LookupTiming(
            QROMSpec(7, 2048), params.code_distance, PhysicalParams(),
            params.fanout_grid_spacing,
        )
        addition = AdditionTiming(
            RunwayConfig(2048, params.runway_separation, params.runway_padding),
            params.code_distance,
        )
        assert est.lookup_time == pytest.approx(lookup.duration)
        assert est.addition_time == pytest.approx(addition.duration)

    def test_faster_reaction_shortens_runtime(self):
        base = estimate_factoring()
        physical = PhysicalParams().rescaled(measure_time=1e-4, decode_time=1e-4)
        fast = estimate_factoring(config=ArchitectureConfig(physical=physical))
        assert fast.runtime_seconds < base.runtime_seconds

    def test_bigger_distance_more_qubits_same_counts(self):
        small = estimate_factoring(FactoringParameters(code_distance=21))
        large = estimate_factoring(FactoringParameters(code_distance=33))
        assert large.physical_qubits > small.physical_qubits
        assert large.num_lookup_additions == small.num_lookup_additions

    @given(st.integers(5, 8))
    @settings(max_examples=4, deadline=None)
    def test_window_scaling_of_lookup_entries(self, w):
        params = FactoringParameters(window_exp=w - 4, window_mul=4)
        est = estimate_factoring(params)
        assert est.total_ccz > 0
        assert est.runtime_seconds > 0

    def test_error_breakdown_sums_to_total(self):
        est = estimate_factoring()
        assert est.logical_error == pytest.approx(sum(est.error_breakdown.values()))


class TestSimulatorCrossChecks:
    def test_tableau_and_statevector_agree_on_stabilizer_circuit(self):
        circuit = (
            Circuit().h(0).cx(0, 1).s(1).cz(1, 2).h(2).cx(2, 3).measure(0, 1, 2, 3)
        )
        for seed in range(6):
            tab = TableauSimulator(4, rng=np.random.default_rng(seed))
            tab.run(circuit)
            sv = StateVector(4, rng=np.random.default_rng(seed))
            sv.run(circuit, forced_measurements=dict(enumerate(tab.record)))
            assert sv.record == tab.record  # forced branch has support

    def test_color_code_ccz_matches_statevector_factory(self):
        # The algebraic CCZ check and the state-vector factory agree.
        assert Color832Code().ccz_phase_check()
        sim, accepted = run_factory()
        assert accepted and output_fidelity(sim) > 1 - 1e-9

    def test_factory_monte_carlo_matches_exact_curve(self):
        # Sample random fault patterns at p = 0.03 and compare the accepted
        # failure fraction with the exact enumeration.
        rng = np.random.default_rng(5)
        p = 0.03
        curve = DistillationCurve(Color832Code())
        exact = curve.output_error(p)
        accepted = failures = 0
        for _ in range(400):
            faults = tuple(v for v in range(8) if rng.random() < p)
            sim, ok = run_factory(faults, rng=np.random.default_rng(1))
            if not ok:
                continue
            accepted += 1
            if output_fidelity(sim) < 0.5:
                failures += 1
        observed = failures / accepted
        assert observed == pytest.approx(exact, abs=3 * math.sqrt(exact / accepted) + 1e-3)


class TestScalingLaws:
    @given(st.sampled_from([11, 15, 21, 27, 33]))
    @settings(max_examples=5, deadline=None)
    def test_addition_time_independent_of_distance_when_reaction_limited(self, d):
        # Reaction-limited steps hide the move time at Table I parameters.
        timing = AdditionTiming(RunwayConfig(2048, 96, 43), d)
        assert timing.duration == pytest.approx(0.278, abs=0.02)

    @given(st.integers(4, 9))
    @settings(max_examples=6, deadline=None)
    def test_lookup_time_scales_with_entries(self, w):
        timing = LookupTiming(QROMSpec(w, 2048), 27)
        per_entry = timing.duration / 2**w
        assert 1e-3 < per_entry < 3e-3  # ~reaction-limited per entry

    def test_runway_segments_scale_inverse_separation(self):
        for sep in (48, 96, 192):
            rw = RunwayConfig(2048, sep, 43)
            assert rw.num_segments == -(-2048 // sep)
